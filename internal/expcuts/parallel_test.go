package expcuts

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// TestArenaMatchesGraphWalk cross-checks the flat-arena Classify against
// the builder's pointer-graph walk and the serialized lookup across
// strides, HABS widths and rule-set shapes — the three layouts must agree
// on every header.
func TestArenaMatchesGraphWalk(t *testing.T) {
	for _, tc := range []struct {
		kind rulegen.Kind
		size int
		cfg  Config
	}{
		{rulegen.CoreRouter, 300, Config{}},
		{rulegen.Firewall, 150, Config{StrideW: 4}},
		{rulegen.Firewall, 100, Config{StrideW: 8, HabsV: 5}},
		{rulegen.Random, 60, Config{StrideW: 2, HabsV: 2}},
		{rulegen.CoreRouter, 120, Config{Sharing: ShareSiblings}},
	} {
		rs := buildSet(t, tc.kind, tc.size, 301)
		tree, err := New(rs, tc.cfg)
		if err != nil {
			t.Fatalf("%v/%d: %v", tc.kind, tc.size, err)
		}
		headers := trace(t, rs, 1500, 302)
		if err := tree.verifyArena(headers); err != nil {
			t.Fatalf("%v/%d: %v", tc.kind, tc.size, err)
		}
		if err := tree.Verify(headers); err != nil {
			t.Fatalf("%v/%d: %v", tc.kind, tc.size, err)
		}
	}
}

// TestParallelBuildMatchesSequential builds the same rule sets with 1, 2,
// 3 and 8 workers and checks that every variant classifies identically to
// the sequential tree and the oracle (batched and scalar), that repeated
// parallel builds are deterministic, and that governor accounting is
// exact (charged nodes == nodes in the tree, none lost or
// double-counted).
func TestParallelBuildMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		kind    rulegen.Kind
		size    int
		sharing SharingMode
	}{
		{rulegen.CoreRouter, 400, ShareGlobal},
		{rulegen.Firewall, 200, ShareGlobal},
		{rulegen.CoreRouter, 150, ShareSiblings},
		{rulegen.Random, 80, ShareGlobal},
	} {
		rs := buildSet(t, tc.kind, tc.size, 311)
		headers := trace(t, rs, 1200, 312)
		seq, err := New(rs, Config{Sharing: tc.sharing})
		if err != nil {
			t.Fatalf("%v/%d sequential: %v", tc.kind, tc.size, err)
		}
		for _, workers := range []int{2, 8} {
			cfg := Config{Sharing: tc.sharing, BuildWorkers: workers}
			par, err := NewCtx(context.Background(), rs, cfg, &buildgov.Budget{})
			if err != nil {
				t.Fatalf("%v/%d workers=%d: %v", tc.kind, tc.size, workers, err)
			}
			out := make([]int, len(headers))
			par.ClassifyBatch(headers, out)
			for i, h := range headers {
				want := rs.Match(h)
				if got := par.Classify(h); got != want {
					t.Fatalf("%v/%d workers=%d: Classify(%v) = %d, oracle = %d",
						tc.kind, tc.size, workers, h, got, want)
				}
				if seqGot := seq.Classify(h); seqGot != want {
					t.Fatalf("%v/%d: sequential tree disagrees with oracle", tc.kind, tc.size)
				}
				if out[i] != want {
					t.Fatalf("%v/%d workers=%d: batched %d != oracle %d", tc.kind, tc.size, workers, out[i], want)
				}
			}
			if err := par.verifyArena(headers); err != nil {
				t.Fatalf("%v/%d workers=%d: %v", tc.kind, tc.size, workers, err)
			}
			if err := par.Verify(headers); err != nil {
				t.Fatalf("%v/%d workers=%d: serialized: %v", tc.kind, tc.size, workers, err)
			}
			// Determinism: same worker count, same tree shape.
			again, err := NewCtx(context.Background(), rs, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(again.nodes) != len(par.nodes) || again.root != par.root {
				t.Fatalf("%v/%d workers=%d: parallel build is not deterministic (%d/%d nodes, roots %d/%d)",
					tc.kind, tc.size, workers, len(par.nodes), len(again.nodes), par.root, again.root)
			}
		}
	}
}

// TestParallelBuildChargesAreExact builds in parallel under an unlimited
// budget and checks the governor's node count equals the built tree's
// node count exactly: concurrent charging must neither lose nor
// double-count.
func TestParallelBuildChargesAreExact(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 500, 321)
	for _, workers := range []int{1, 2, 4, 8} {
		gov := buildgov.Start(context.Background(), &buildgov.Budget{})
		cfg := Config{Sharing: ShareGlobal}
		if err := cfg.fillDefaults(); err != nil {
			t.Fatal(err)
		}
		tree := &Tree{cfg: cfg, rs: rs}
		all := make([]int32, rs.Len())
		for i := range all {
			all[i] = int32(i)
		}
		var cnt atomic.Int64
		var err error
		if workers > 1 {
			tree.root, err = tree.buildParallel(gov, &cnt, all, workers)
		} else {
			b := &builder{t: tree, mode: cfg.Sharing, gov: gov, count: &cnt,
				memo: make(map[string]ref)}
			tree.root, err = b.build(0, rules.FullBox(), all, b.memo)
			tree.nodes = b.nodes
		}
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := gov.Stats().Nodes, len(tree.nodes); got != want {
			t.Fatalf("workers=%d: governor charged %d nodes, tree has %d (lost or double-counted)",
				workers, got, want)
		}
	}
}

// TestParallelBuildTripUnwindsWithinDeadline starts a parallel build of a
// pathological rule set under a tight wall-clock budget and requires the
// whole worker pool to unwind within 2x the deadline — the PR 2
// guarantee, extended to fan-out.
func TestParallelBuildTripUnwindsWithinDeadline(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Random, Size: 2500, Seed: 331})
	if err != nil {
		t.Fatal(err)
	}
	timeout := 100 * time.Millisecond
	for _, workers := range []int{2, 8} {
		start := time.Now()
		_, err := NewCtx(context.Background(), rs,
			Config{Sharing: ShareNone, BuildWorkers: workers},
			&buildgov.Budget{Timeout: timeout})
		elapsed := time.Since(start)
		if err == nil {
			// The set built inside the budget; that's a pass for unwind
			// purposes but the timing bound below still applies.
			t.Logf("workers=%d: build finished inside budget in %v", workers, elapsed)
		} else if !errors.Is(err, buildgov.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: %v is not a budget trip", workers, err)
		}
		if elapsed > 2*timeout {
			t.Fatalf("workers=%d: unwind took %v, want <= 2x the %v deadline", workers, elapsed, timeout)
		}
	}
}

// TestParallelBuildNodeCapTrips checks the shared MaxNodes counter trips
// parallel builds with bounded overshoot (at most one in-flight node per
// worker).
func TestParallelBuildNodeCapTrips(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 400, 341)
	_, err := NewCtx(context.Background(), rs,
		Config{BuildWorkers: 4, MaxNodes: 20}, nil)
	if err == nil {
		t.Fatal("MaxNodes=20 build unexpectedly succeeded")
	}
}
