package expcuts

import (
	"bytes"
	"runtime/debug"
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// TestClassifyBatchPipelinedMatchesScalar is the in-package conformance
// matrix for the pipelined walk: every group size (including the clamped
// extremes), affine on and off, odd tail lengths, all against the scalar
// arena walk.
func TestClassifyBatchPipelinedMatchesScalar(t *testing.T) {
	tree, hs := batchFixture(t)
	groups := []int{1, 3, 8, 64, 0 /* default */, MaxPipelineGroup + 5 /* clamped */}
	sizes := []int{1, 3, 7, 64, 65, len(hs)}
	for _, group := range groups {
		for _, affine := range []bool{false, true} {
			for _, size := range sizes {
				batch := hs[:size]
				out := make([]int, size)
				for i := range out {
					out[i] = -999 // poison: every slot must be written
				}
				tree.ClassifyBatchPipelined(batch, out, group, affine)
				for i, h := range batch {
					if want := tree.Classify(h); out[i] != want {
						t.Fatalf("group=%d affine=%v size=%d packet %d: pipelined %d, scalar %d",
							group, affine, size, i, out[i], want)
					}
				}
			}
		}
	}
}

// TestClassifyBatchPipelinedZeroAllocSteadyState is the allocation gate on
// the pipelined path, mirroring TestClassifyBatchZeroAllocSteadyState.
func TestClassifyBatchPipelinedZeroAllocSteadyState(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool drops random Puts under the race detector; the gate runs in the non-race pass")
	}
	tree, hs := batchFixture(t)
	batch := hs[:64]
	out := make([]int, len(batch))
	tree.ClassifyBatchPipelined(batch, out, 8, true) // warm the pool

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, affine := range []bool{false, true} {
		if n := testing.AllocsPerRun(100, func() {
			tree.ClassifyBatchPipelined(batch, out, 8, affine)
		}); n != 0 {
			t.Fatalf("steady-state pipelined walk (affine=%v) allocates %.2f times per op, want 0",
				affine, n)
		}
	}
}

// TestClassifyBatchPipelinedDegenerateTree covers the root-is-terminal
// shape on the pipelined path.
func TestClassifyBatchPipelinedDegenerateTree(t *testing.T) {
	rs := rules.NewRuleSet("wildcard", []rules.Rule{{
		SrcPort: rules.FullPortRange,
		DstPort: rules.FullPortRange,
		Proto:   rules.AnyProto,
	}})
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := []rules.Header{
		{},
		{SrcIP: 0xFFFFFFFF, DstIP: 0xFFFFFFFF, SrcPort: 65535, DstPort: 65535, Proto: 255},
	}
	out := make([]int, len(hs))
	tree.ClassifyBatchPipelined(hs, out, 4, true)
	for i, h := range hs {
		if want := tree.Classify(h); out[i] != want {
			t.Errorf("packet %d: pipelined %d, scalar %d", i, out[i], want)
		}
	}
}

// TestClassifyBatchPipelinedSharedOut pins that consecutive pipelined
// batches reusing one out slice do not leak walk state across calls (out
// carries raw refs mid-walk, like ClassifyBatch).
func TestClassifyBatchPipelinedSharedOut(t *testing.T) {
	tree, hs := batchFixture(t)
	out := make([]int, 64)
	for round := 0; round < 4; round++ {
		batch := hs[round*64 : (round+1)*64]
		tree.ClassifyBatchPipelined(batch, out, 3, round%2 == 0)
		for i, h := range batch {
			if want := tree.Classify(h); out[i] != want {
				t.Fatalf("round %d packet %d: pipelined %d, scalar %d", round, i, out[i], want)
			}
		}
	}
}

// TestStageFill checks the per-stage fill counters: level 0 sees every
// packet of every pipelined batch, and the fill profile is monotonically
// non-increasing (packets only leave the pipeline, never re-enter).
func TestStageFill(t *testing.T) {
	tree, hs := batchFixture(t)
	before := tree.StageFill()
	batch := hs[:64]
	out := make([]int, len(batch))
	const rounds = 3
	for r := 0; r < rounds; r++ {
		tree.ClassifyBatchPipelined(batch, out, 8, false)
	}
	after := tree.StageFill()
	if len(after) != tree.Depth() {
		t.Fatalf("StageFill has %d levels, want depth %d", len(after), tree.Depth())
	}
	if got := after[0] - before[0]; got != rounds*uint64(len(batch)) {
		t.Errorf("level 0 fill grew by %d, want %d", got, rounds*len(batch))
	}
	for l := 1; l < len(after); l++ {
		if after[l]-before[l] > after[l-1]-before[l-1] {
			t.Errorf("fill increased from level %d (%d) to %d (%d)",
				l-1, after[l-1]-before[l-1], l, after[l]-before[l])
		}
	}
}

// TestReorderImageByteIdentical is the serialized-image regression gate for
// the level-major arena reorder: a tree built in raw recursion order and a
// tree built with the reorder must save bit-for-bit identical images (the
// reorder is stable within each level, and serialize already groups levels).
func TestReorderImageByteIdentical(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 300, Seed: 801})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(rs, Config{noLevelMajor: true})
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.Image().Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := reordered.Image().Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("serialized image changed across level-major reorder: %d vs %d bytes (or content differs)",
			a.Len(), b.Len())
	}
	if plain.rootPtr != reordered.rootPtr {
		t.Fatalf("root pointer word changed: %#x vs %#x", plain.rootPtr, reordered.rootPtr)
	}
}

// TestReorderLevelMajorContiguity pins the layout property the pipelined
// walk relies on: after the reorder, node ids are partitioned into
// contiguous ascending level runs, children always live on the next level,
// and the walks still agree with the pointer graph.
func TestReorderLevelMajorContiguity(t *testing.T) {
	tree, hs := batchFixture(t)
	if tree.levelOff == nil {
		t.Fatal("levelOff not recorded by the reorder")
	}
	if got, want := int(tree.levelOff[len(tree.levelOff)-1]), len(tree.nodes); got != want {
		t.Fatalf("levelOff end %d, want node count %d", got, want)
	}
	for id, n := range tree.nodes {
		if id < int(tree.levelOff[n.level]) || id >= int(tree.levelOff[n.level+1]) {
			t.Fatalf("node %d (level %d) outside its level run [%d,%d)",
				id, n.level, tree.levelOff[n.level], tree.levelOff[n.level+1])
		}
		for _, p := range n.ptrs {
			if p >= 0 && tree.nodes[p].level != n.level+1 {
				t.Fatalf("node %d (level %d) points to node %d (level %d)",
					id, n.level, p, tree.nodes[p].level)
			}
		}
	}
	if err := tree.verifyArena(hs); err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(hs); err != nil {
		t.Fatal(err)
	}
}

// TestScratchPoolRetentionCap checks that a jumbo batch's grown scratch is
// dropped on release instead of being pinned in the pools forever.
func TestScratchPoolRetentionCap(t *testing.T) {
	sc := &batchScratch{keys: make([]rules.Key, maxPooledBatch+1)}
	sc.release()
	if sc.keys != nil {
		t.Error("batchScratch release kept an oversized keys slice")
	}
	sc = &batchScratch{keys: make([]rules.Key, maxPooledBatch)}
	sc.release()
	if sc.keys == nil {
		t.Error("batchScratch release dropped a within-cap keys slice")
	}

	ps := &pipeScratch{keysHi: make([]uint64, maxPooledBatch+1)}
	ps.release()
	if ps.keysHi != nil {
		t.Error("pipeScratch release kept an oversized scratch")
	}
	ps = &pipeScratch{keysHi: make([]uint64, maxPooledBatch), cnt: make([]int32, 257)}
	ps.release()
	if ps.keysHi == nil || ps.cnt == nil {
		t.Error("pipeScratch release dropped a within-cap scratch")
	}
}

// TestClassifyBatchPipelinedJumbo exercises a batch larger than the pool
// retention cap end-to-end (grow, classify, drop on release).
func TestClassifyBatchPipelinedJumbo(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 100, Seed: 811})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: maxPooledBatch + 100, Seed: 812, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, len(tr.Headers))
	tree.ClassifyBatchPipelined(tr.Headers, out, 16, true)
	for i, h := range tr.Headers {
		if want := tree.Classify(h); out[i] != want {
			t.Fatalf("packet %d: pipelined %d, scalar %d", i, out[i], want)
		}
	}
}
