package expcuts

import (
	"math/bits"
	"sync"

	"repro/internal/rules"
)

// Software-pipelined level-stage execution over the flat arena.
//
// The hardware ExpCuts design maps the tree's fixed ⌈104/w⌉ levels onto
// explicit pipeline stages with per-stage SRAM banks, so every stage's
// memory access overlaps every other stage's. The level-synchronous
// ClassifyBatch already gets part of that — all packets advance through a
// level together — but each packet's step is a serial chain of dependent
// loads (CPA pointer → next node's HABS word → next CPA pointer), and the
// per-packet key-chunk extraction re-runs Key.Bits' bounds checks and
// straddle switch 13 times per packet.
//
// ClassifyBatchPipelined restructures the walk into a two-stage split over
// interleaved packet groups:
//
//	stage A (lookup):   for each packet in the group, extract the level's
//	                    key chunk from pre-split SoA key words (one shift
//	                    and mask — for strides dividing 64 a chunk never
//	                    straddles the hi/lo boundary) and issue the
//	                    group's independent CPA pointer loads, so `group`
//	                    arena fetches are in flight at once;
//	stage B (advance):  consume the pointers and, for every packet that
//	                    descended, immediately load the *next* level's
//	                    HABS word and CPA base into the carried per-packet
//	                    state — while the following group is back in stage
//	                    A on the current level, and without putting those
//	                    loads on stage A's critical path.
//
// Because the arena is level-major (reorderLevelMajor), the lines stage B
// touches for level L+1 are contiguous per level, so group g's advance
// warms exactly the bank group g+1 hits next — the multi-core software
// analogue of the paper's per-stage SRAM banks and of the level-to-stage
// mapping in bidirectional pipelined lookup designs.
//
// The affine mode additionally counting-sorts the batch by root key chunk
// before the walk, so each group descends one subtree slice and a shard's
// working set concentrates on one contiguous region of every level — the
// analogue of biasing a stage's bank to one microengine's local SRAM. It
// pays an index indirection per packet-level, worthwhile when the arena
// is far larger than the cache.

const (
	// DefaultPipelineGroup is the stage group size used when the caller
	// passes group <= 0: a whole default engine batch, so stage A issues
	// one full wave of independent arena loads per level. See
	// AutoPipelineGroup in internal/engine for the GOMAXPROCS-derived
	// choice.
	DefaultPipelineGroup = 64
	// MaxPipelineGroup caps the stage group size; larger requests are
	// clamped. Past this the two stages stop interleaving within a batch
	// and extra group size only grows the carried state.
	MaxPipelineGroup = 1024
)

// pipeScratch is the pooled per-call scratch of ClassifyBatchPipelined:
// SoA key words, the carried per-packet node state (HABS word + CPA base,
// loaded in stage B of the previous level), and the affine walk order with
// its counting-sort histogram.
type pipeScratch struct {
	keysHi, keysLo []uint64
	hw             []uint64
	cb             []uint32
	ord            []int32
	cnt            []int32
}

var pipePool = sync.Pool{New: func() any { return new(pipeScratch) }}

func (sc *pipeScratch) ensure(n int) {
	if cap(sc.keysHi) < n {
		sc.keysHi = make([]uint64, n)
		sc.keysLo = make([]uint64, n)
		sc.hw = make([]uint64, n)
		sc.cb = make([]uint32, n)
		sc.ord = make([]int32, n)
	}
}

// release returns the scratch to the pool unless a jumbo batch grew it past
// the retention cap (see maxPooledBatch in batch.go).
func (sc *pipeScratch) release() {
	if cap(sc.keysHi) > maxPooledBatch {
		*sc = pipeScratch{}
	}
	pipePool.Put(sc)
}

// ClassifyBatchPipelined classifies hs[i] into out[i] with the software-
// pipelined stage walk described above. group is the stage group size
// (<= 0 selects DefaultPipelineGroup, values above MaxPipelineGroup are
// clamped); affine pre-sorts the walk order by root key chunk so each
// group descends one subtree slice. Answers are identical to Classify and
// ClassifyBatch for every group size; the steady state performs zero heap
// allocations.
func (t *Tree) ClassifyBatchPipelined(hs []rules.Header, out []int, group int, affine bool) {
	n := len(hs)
	out = out[:n]
	if n == 0 {
		return
	}
	if t.root < 0 {
		m := decodeRef(t.root)
		for i := range out {
			out[i] = m
		}
		return
	}
	if group <= 0 {
		group = DefaultPipelineGroup
	}
	if group > MaxPipelineGroup {
		group = MaxPipelineGroup
	}

	sc := pipePool.Get().(*pipeScratch)
	sc.ensure(n)
	keysHi, keysLo := sc.keysHi[:n], sc.keysLo[:n]
	for i, h := range hs {
		keysHi[i], keysLo[i] = h.Key().Words()
	}

	w := t.cfg.StrideW
	u := w - t.cfg.HabsV
	lowU := uint32(1)<<u - 1
	mask := uint32(1)<<w - 1
	habs, cpaBase, cpa := t.ar.habs, t.ar.cpaBase, t.ar.cpa
	hw, cb := sc.hw[:n], sc.cb[:n]

	rootHabs, rootBase := habs[t.root], cpaBase[t.root]
	for i := range out {
		out[i] = int(t.root)
		hw[i] = rootHabs
		cb[i] = rootBase
	}
	var ord []int32
	if affine && n > 1 {
		ord = sc.sortAffine(n, keysHi, w)
	}

	stage := t.stageFill
	active := n
	for pos := uint(0); active > 0 && pos < rules.KeyBits; pos += w {
		if stage != nil {
			stage[pos/w].Add(uint64(active))
		}
		kw, shift := keysHi, 64-(pos+w)
		if pos+w > 64 {
			kw, shift = keysLo, 128-(pos+w)
		}
		live := 0
		for base := 0; base < n; base += group {
			end := base + group
			if end > n {
				end = n
			}
			if ord == nil {
				// Reslicing the group's window of every parallel array
				// lets the compiler drop the bounds checks inside both
				// stage waves; with group >= n this is the whole batch in
				// one wave (the common engine shape — batch size <= group).
				og := out[base:end]
				kwv, hwv, cbv := kw[base:end], hw[base:end], cb[base:end]
				// Stage A: issue the group's CPA pointer loads. Each
				// iteration is independent, so the fetches overlap.
				for i, o := range og {
					if ref(o) < 0 {
						continue
					}
					c := uint32(kwv[i]>>shift) & mask
					rank := uint32(bits.OnesCount64(hwv[i]&(uint64(2)<<(c>>u)-1))) - 1
					og[i] = int(cpa[cbv[i]+rank<<u+(c&lowU)])
				}
				// Stage B: consume the pointers; survivors pull the next
				// level's (level-contiguous) HABS word and CPA base off
				// stage A's critical path.
				for i, o := range og {
					if r := ref(o); r >= 0 {
						hwv[i] = habs[r]
						cbv[i] = cpaBase[r]
						live++
					}
				}
			} else {
				for j := base; j < end; j++ {
					i := ord[j]
					if ref(out[i]) < 0 {
						continue
					}
					c := uint32(kw[i]>>shift) & mask
					rank := uint32(bits.OnesCount64(hw[i]&(uint64(2)<<(c>>u)-1))) - 1
					out[i] = int(cpa[cb[i]+rank<<u+(c&lowU)])
				}
				for j := base; j < end; j++ {
					i := ord[j]
					if r := ref(out[i]); r >= 0 {
						hw[i] = habs[r]
						cb[i] = cpaBase[r]
						live++
					}
				}
			}
		}
		active = live
	}
	for i := range out {
		out[i] = decodeRef(ref(out[i]))
	}
	sc.release()
}

// sortAffine counting-sorts packet indices 0..n-1 by their root-level key
// chunk (the top w bits) into sc.ord. Groups cut from the sorted order then
// share a root child — and, with the level-major arena, one contiguous
// slice of every deeper level.
func (sc *pipeScratch) sortAffine(n int, keysHi []uint64, w uint) []int32 {
	buckets := 1 << w
	if cap(sc.cnt) < buckets+1 {
		sc.cnt = make([]int32, buckets+1)
	}
	cnt := sc.cnt[:buckets+1]
	for i := range cnt {
		cnt[i] = 0
	}
	shift := 64 - w
	for i := 0; i < n; i++ {
		cnt[(keysHi[i]>>shift)+1]++
	}
	for b := 0; b < buckets; b++ {
		cnt[b+1] += cnt[b]
	}
	ord := sc.ord[:n]
	for i := 0; i < n; i++ {
		b := keysHi[i] >> shift
		ord[cnt[b]] = int32(i)
		cnt[b]++
	}
	return ord
}
