package expcuts

import (
	"fmt"

	"repro/internal/bitstring"
	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/rules"
)

// Serialized node format (aggregated, Figure 4 of the paper adapted to a
// fixed stride):
//
//	word 0:  HABS bit string (2^v significant bits)
//	word 1+: CPA — one 2^u-pointer sub-array per set HABS bit
//
// The cutting information of the paper's node word (dimension, stride) is
// implicit here because the stride is fixed and the level determines the key
// bits — that is the "explicit" in Explicit Cuttings. A level therefore
// costs exactly two single-word SRAM reads: the HABS word and the indexed
// CPA pointer. Leaves are encoded in pointer words (memlayout.LeafPtr), so
// they cost nothing: the final CPA read *is* the classification result.
//
// serialize places levels onto SRAM channels per the headroom allocation
// (§5.3, Table 4), deepest level first so child pointers exist when their
// parents are written.
func (t *Tree) serialize() error {
	alloc, err := memlayout.AllocateLevels(
		memlayout.UniformDemand(t.stats.Depth), t.cfg.Headroom, t.cfg.Channels)
	if err != nil {
		return err
	}
	t.image = memlayout.NewImage()
	t.nodeAddrs = make([]uint32, len(t.nodes))

	byLevel := make([][]ref, t.stats.Depth)
	for id, n := range t.nodes {
		byLevel[n.level] = append(byLevel[n.level], ref(id))
	}
	w, v := t.cfg.StrideW, t.cfg.HabsV
	ptrBuf := make([]uint32, 1<<w)
	for level := t.stats.Depth - 1; level >= 0; level-- {
		ch := alloc[level]
		for _, id := range byLevel[level] {
			n := t.nodes[id]
			for i, r := range n.ptrs {
				ptrBuf[i] = t.refToPtr(r)
			}
			habs, err := bitstring.CompressHABS(ptrBuf, w, v)
			if err != nil {
				return fmt.Errorf("expcuts: compressing node %d: %w", id, err)
			}
			words := append([]uint32{habs.Bits}, habs.CPA...)
			off := t.image.Alloc(ch, words)
			t.nodeAddrs[id] = memlayout.NodePtr(ch, off)
		}
	}
	t.rootPtr = t.refToPtr(t.root)
	t.stats.MemoryWordsAggregated = t.image.TotalWords()
	return nil
}

// refToPtr converts an in-memory child reference to its pointer word. Node
// references require the node to have been placed already (levels are
// serialized bottom-up).
func (t *Tree) refToPtr(r ref) uint32 {
	if r == refNoMatch {
		return memlayout.LeafPtr(-1)
	}
	if r < 0 {
		return memlayout.LeafPtr(refRule(r))
	}
	return t.nodeAddrs[r]
}

// Lookup runs the serialized lookup against mem: per level, one HABS-word
// read, the POP_COUNT decode, and one CPA pointer read.
func (t *Tree) Lookup(mem nptrace.Mem, h rules.Header) int {
	return t.LookupCosts(mem, h, nptrace.DefaultCosts)
}

// LookupCosts is Lookup with an explicit cycle-cost model. Substituting
// Costs.PopCountRISC for Costs.PopCount reproduces the paper's §5.4
// instruction-selection ablation (a software popcount takes >100 RISC
// instructions per level).
func (t *Tree) LookupCosts(mem nptrace.Mem, h rules.Header, costs nptrace.Costs) int {
	w, v := t.cfg.StrideW, t.cfg.HabsV
	u := w - v
	k := h.Key()
	ptr := t.rootPtr
	pos := uint(0)
	for !memlayout.IsLeaf(ptr) {
		ch, off := memlayout.NodeAddr(ptr)
		mem.Compute(costs.ALU + costs.IssueIO) // extract key chunk, issue
		habs := mem.Read(ch, off, 1)[0]
		n := k.Bits(pos, w)
		m := n >> u
		j := n & (1<<u - 1)
		// AND off the high bits, POP_COUNT, form the CPA index (§5.4).
		mem.Compute(costs.ALU + costs.PopCount + 2*costs.ALU + costs.IssueIO)
		i := uint32(bitstring.Rank(habs, uint(m))) - 1
		ptr = mem.Read(ch, off+1+i<<u+j, 1)[0]
		pos += w
	}
	return memlayout.LeafRule(ptr)
}

// Program records the access program for one header.
func (t *Tree) Program(h rules.Header) nptrace.Program {
	rec := nptrace.NewRecorder(t.image)
	return rec.Finish(t.Lookup(rec, h))
}

// ProgramCosts records the access program under an explicit cost model.
func (t *Tree) ProgramCosts(h rules.Header, costs nptrace.Costs) nptrace.Program {
	rec := nptrace.NewRecorder(t.image)
	return rec.Finish(t.LookupCosts(rec, h, costs))
}

// Verify cross-checks the serialized lookup against the native tree walk.
func (t *Tree) Verify(headers []rules.Header) error {
	mem := nptrace.NullMem{R: t.image}
	for _, h := range headers {
		if got, want := t.Lookup(mem, h), t.Classify(h); got != want {
			return fmt.Errorf("expcuts: serialized lookup %d != native %d for %v", got, want, h)
		}
	}
	return nil
}

// FullTree is the un-aggregated serialization of an ExpCuts tree: every
// internal node stores its raw 2^w pointer array, so a level costs a single
// SRAM read but the footprint is the "without aggregation" bar of Figure 6
// — too large for the SRAM chips on the larger rule sets.
type FullTree struct {
	t       *Tree
	image   *memlayout.Image
	rootPtr uint32
}

// Full serializes the un-aggregated variant of the tree.
func (t *Tree) Full() (*FullTree, error) {
	alloc, err := memlayout.AllocateLevels(
		memlayout.UniformDemand(t.stats.Depth), t.cfg.Headroom, t.cfg.Channels)
	if err != nil {
		return nil, err
	}
	f := &FullTree{t: t, image: memlayout.NewImage()}
	addrs := make([]uint32, len(t.nodes))
	byLevel := make([][]ref, t.stats.Depth)
	for id, n := range t.nodes {
		byLevel[n.level] = append(byLevel[n.level], ref(id))
	}
	refToPtr := func(r ref) uint32 {
		if r == refNoMatch {
			return memlayout.LeafPtr(-1)
		}
		if r < 0 {
			return memlayout.LeafPtr(refRule(r))
		}
		return addrs[r]
	}
	ptrBuf := make([]uint32, 1<<t.cfg.StrideW)
	for level := t.stats.Depth - 1; level >= 0; level-- {
		ch := alloc[level]
		for _, id := range byLevel[level] {
			n := t.nodes[id]
			for i, r := range n.ptrs {
				ptrBuf[i] = refToPtr(r)
			}
			off := f.image.Alloc(ch, ptrBuf)
			addrs[id] = memlayout.NodePtr(ch, off)
		}
	}
	f.rootPtr = refToPtr(t.root)
	return f, nil
}

// MemoryBytes returns the un-aggregated footprint.
func (f *FullTree) MemoryBytes() int { return f.image.TotalBytes() }

// Image exposes the serialized image.
func (f *FullTree) Image() *memlayout.Image { return f.image }

// Lookup runs the un-aggregated serialized lookup: one pointer read per
// level.
func (f *FullTree) Lookup(mem nptrace.Mem, h rules.Header) int {
	costs := nptrace.DefaultCosts
	w := f.t.cfg.StrideW
	k := h.Key()
	ptr := f.rootPtr
	pos := uint(0)
	for !memlayout.IsLeaf(ptr) {
		ch, off := memlayout.NodeAddr(ptr)
		mem.Compute(2*costs.ALU + costs.IssueIO)
		ptr = mem.Read(ch, off+k.Bits(pos, w), 1)[0]
		pos += w
	}
	return memlayout.LeafRule(ptr)
}

// Program records the access program for one header.
func (f *FullTree) Program(h rules.Header) nptrace.Program {
	rec := nptrace.NewRecorder(f.image)
	return rec.Finish(f.Lookup(rec, h))
}
