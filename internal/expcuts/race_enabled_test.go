//go:build race

package expcuts

// raceDetectorEnabled reports whether this test binary was built with
// -race. The zero-allocation gates skip under the race detector because
// sync.Pool deliberately drops a random quarter of Puts in race mode
// (to shake out reuse races), so a pooled-scratch path cannot hold
// 0 allocs/op there no matter how clean the code is. CI enforces the
// gates in a non-race pass.
const raceDetectorEnabled = true
