package expcuts

import (
	"fmt"

	"repro/internal/rules"
)

// arena is the flat structure-of-arrays lookup layout of a built tree —
// the in-memory analogue of the paper's per-level SRAM layout (one HABS
// word plus one CPA pointer word per level, §4.2.2/Figure 4):
//
//   - habs[id] is node id's HABS bit string (2^v significant bits),
//   - cpa[cpaBase[id] ... ] are its CPA pointer sub-arrays, one 2^u-ref
//     sub-array per set HABS bit, concatenated for the whole tree,
//   - refs are int32 node indices (or encoded leaves), not Go pointers.
//
// Compared to the []*node pointer graph the builder produces, the arena
// shrinks the working set to what the compressed serialized image holds,
// removes per-node allocations and pointer-chasing cache misses from the
// hot walk, and is free of interior pointers — the garbage collector
// never traverses it, and any number of serving shards can share one
// immutable arena with no synchronization. The builder graph is kept
// alongside solely for stats and the serialize path, whose byte-for-byte
// image layout must not change.
type arena struct {
	habs    []uint64 // per node: HABS word (v <= 5, so <= 32 significant bits)
	cpaBase []uint32 // per node: first index into cpa
	cpa     []ref    // concatenated CPA sub-arrays of every node
}

// buildArena flattens t.nodes into the arena, applying the same
// sub-array deduplication as bitstring.CompressHABS so the arena is
// word-for-word the lookup content of the serialized image (per node: 1
// HABS word + one 2^u-ref sub-array per set bit).
func (t *Tree) buildArena() error {
	w, v := t.cfg.StrideW, t.cfg.HabsV
	u := w - v
	sub := 1 << u
	cells := 1 << w
	// MemoryWordsAggregated = nodes + total CPA refs, computed by
	// collectStats with exactly the dedup rule applied below.
	t.ar = arena{
		habs:    make([]uint64, len(t.nodes)),
		cpaBase: make([]uint32, len(t.nodes)),
		cpa:     make([]ref, 0, t.stats.MemoryWordsAggregated-len(t.nodes)),
	}
	for id, n := range t.nodes {
		base := len(t.ar.cpa)
		if uint64(base) > uint64(^uint32(0)) {
			return fmt.Errorf("expcuts: arena CPA exceeds 2^32 words (%d nodes)", len(t.nodes))
		}
		t.ar.cpaBase[id] = uint32(base)
		var habs uint64
		for i := 0; i < cells; i += sub {
			if i == 0 || !equalRefs(n.ptrs[i-sub:i], n.ptrs[i:i+sub]) {
				habs |= 1 << uint(i/sub)
				t.ar.cpa = append(t.ar.cpa, n.ptrs[i:i+sub]...)
			}
		}
		t.ar.habs[id] = habs
	}
	return nil
}

// verifyArena cross-checks the arena walk against the pointer-graph walk
// for the given headers (test helper; mirrors Tree.Verify for the
// serialized image).
func (t *Tree) verifyArena(headers []rules.Header) error {
	for _, h := range headers {
		if got, want := t.Classify(h), t.classifyGraph(h); got != want {
			return fmt.Errorf("expcuts: arena walk %d != graph walk %d for %v", got, want, h)
		}
	}
	return nil
}
