// Package expcuts implements Explicit Cuttings (ExpCuts), the paper's core
// contribution: a decision-tree packet classifier optimized for multi-core
// network processors.
//
// ExpCuts departs from HiCuts in two ways (§4.2.1):
//
//  1. Fixed stride. Every internal node cuts its sub-space into exactly 2^w
//     equal cells, consuming the next w bits of the 104-bit concatenated
//     header key (srcIP ‖ dstIP ‖ srcPort ‖ dstPort ‖ proto). The tree
//     depth is therefore exactly ⌈104/w⌉ — an *explicit* worst-case bound
//     on per-packet memory accesses, the metric that matters at line rate.
//
//  2. No linear search. Cutting continues until every sub-space is fully
//     resolved: a node becomes a leaf when no rule intersects it, or when
//     the highest-priority intersecting rule covers the whole sub-space
//     (that rule then beats every other intersecting rule at every point
//     inside, so it is the match). This is binth = 1 in HiCuts terms.
//
// Both changes explode memory, which the hierarchical space aggregation of
// §4.2.2 wins back: child pointer arrays are compressed with a Hierarchical
// Aggregation Bit String (HABS, internal/bitstring) and sub-spaces with
// identical relative rule geometry share one child node.
package expcuts

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/bitstring"
	"repro/internal/buildgov"
	"repro/internal/memlayout"
	"repro/internal/rules"
)

// Config parameterizes tree construction.
type Config struct {
	// StrideW is w: every internal node has 2^w children. It must divide
	// the width of every header field, i.e. be one of 1, 2, 4, 8.
	// The paper uses 8.
	StrideW uint
	// HabsV is v: the HABS has 2^v bits. Must satisfy v <= StrideW and
	// v <= bitstring.MaxV. The paper uses 4 (a 16-bit HABS).
	HabsV uint
	// Sharing selects how aggressively sub-spaces with identical relative
	// rule geometry share child nodes; see SharingMode.
	Sharing SharingMode
	// MaxNodes aborts construction beyond this many unique nodes
	// (default 4 Mi) instead of exhausting memory.
	MaxNodes int
	// Channels is the number of SRAM channels for serialization (1..4).
	Channels int
	// Headroom weights the level-to-channel allocation.
	Headroom memlayout.Headroom
	// BuildWorkers fans subtree construction out over a bounded worker
	// pool: the root's 2^w cells are statically partitioned into
	// contiguous chunks, one builder goroutine per chunk, all charging
	// the same build governor (the budget bounds the build's *total*
	// consumption). 0 or 1 builds sequentially — the default, and the
	// only mode whose node ordering (and therefore serialized image) is
	// bit-for-bit reproducible against earlier releases. Parallel builds
	// are deterministic for a fixed worker count and classify identically
	// to sequential builds; they may share fewer nodes (each worker
	// deduplicates within its own memo scope), trading memory for build
	// wall-clock.
	BuildWorkers int

	// noLevelMajor skips the BFS level-major node reorder that makes each
	// level's arena entries contiguous. Unexported: it exists only so the
	// serialized-image byte-identity regression test can build a tree in
	// the raw recursion order and compare images. The reorder never changes
	// the image (see reorderLevelMajor), so there is no reason for callers
	// to set it.
	noLevelMajor bool
}

// SharingMode selects the node-sharing policy, the subject of the sharing
// ablation.
type SharingMode int

const (
	// ShareGlobal (the default, and what ExpCuts does) deduplicates
	// sub-spaces with equal signatures anywhere in the tree.
	ShareGlobal SharingMode = iota
	// ShareSiblings deduplicates only among the 2^w children of one node
	// — the pointer aggregation HiCuts performs (Figure 2 of the paper).
	ShareSiblings
	// ShareNone builds the fully expanded tree. With fixed-stride cutting
	// a single wildcard dimension multiplies the expansion by 2^w per
	// level, so this is infeasible beyond toy rule sets; it exists to
	// demonstrate exactly that (the MaxNodes budget makes it fail
	// cleanly).
	ShareNone
)

// String names the sharing mode.
func (m SharingMode) String() string {
	switch m {
	case ShareGlobal:
		return "global"
	case ShareSiblings:
		return "siblings"
	case ShareNone:
		return "none"
	}
	return fmt.Sprintf("SharingMode(%d)", int(m))
}

// DefaultConfig matches the paper: w = 8 (256 cuts), 16-bit HABS, global
// sharing, four SRAM channels.
func DefaultConfig() Config {
	return Config{
		StrideW:  8,
		HabsV:    4,
		Sharing:  ShareGlobal,
		MaxNodes: 4 << 20,
		Channels: memlayout.NumChannels,
		Headroom: memlayout.UniformHeadroom,
	}
}

func (c *Config) fillDefaults() error {
	d := DefaultConfig()
	if c.StrideW == 0 {
		c.StrideW = d.StrideW
	}
	if c.HabsV == 0 && c.StrideW > 0 {
		c.HabsV = d.HabsV
		if c.HabsV > c.StrideW {
			c.HabsV = c.StrideW
		}
	}
	if c.Sharing < ShareGlobal || c.Sharing > ShareNone {
		return fmt.Errorf("expcuts: invalid sharing mode %d", c.Sharing)
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = d.MaxNodes
	}
	if c.Channels == 0 {
		c.Channels = d.Channels
	}
	if c.Headroom == (memlayout.Headroom{}) {
		c.Headroom = d.Headroom
	}
	switch c.StrideW {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("expcuts: stride w=%d must divide every field width (1, 2, 4 or 8)", c.StrideW)
	}
	if c.HabsV > c.StrideW || c.HabsV > bitstring.MaxV {
		return fmt.Errorf("expcuts: HABS v=%d must satisfy v <= w=%d and v <= %d",
			c.HabsV, c.StrideW, bitstring.MaxV)
	}
	if c.Channels < 1 || c.Channels > memlayout.NumChannels {
		return fmt.Errorf("expcuts: channels %d out of [1,%d]", c.Channels, memlayout.NumChannels)
	}
	if c.BuildWorkers < 0 {
		return fmt.Errorf("expcuts: build workers %d must be >= 0", c.BuildWorkers)
	}
	return nil
}

// ref is a child reference inside the in-memory tree:
//
//	>= 0  index into Tree.nodes
//	  -1  no-match leaf
//	<= -2 rule leaf, rule index = -(ref+2)
type ref = int32

const refNoMatch ref = -1

func refLeaf(ruleIdx int) ref { return ref(-(ruleIdx + 2)) }

func refRule(r ref) int { return int(-r - 2) }

// node is one internal tree node: 2^w child references. The node's level
// (bit position / w) is implied by where it sits in the level index.
type node struct {
	level int
	ptrs  []ref
}

// BuildStats reports the tree-shape numbers behind Figure 6 and §6.3.
type BuildStats struct {
	// Nodes is the number of unique internal nodes.
	Nodes int
	// NodesPerLevel counts unique internal nodes at each tree level.
	NodesPerLevel []int
	// Depth is the explicit tree depth ⌈104/w⌉.
	Depth int
	// AvgUniqueChildren is the mean number of distinct children per
	// internal node (the paper observes < 10 at 256 cuts, §4.2.2).
	AvgUniqueChildren float64
	// MemoryWordsAggregated is the SRAM footprint with HABS/CPA
	// compression; MemoryWordsFull is the footprint with full 2^w
	// pointer arrays (the "without aggregation" bar of Figure 6).
	MemoryWordsAggregated, MemoryWordsFull int
	// WorstCaseAccesses is the explicit per-lookup SRAM command bound:
	// two single-word accesses per level (HABS word, CPA pointer).
	WorstCaseAccesses int
}

// Tree is a built ExpCuts classifier.
type Tree struct {
	cfg   Config
	rs    *rules.RuleSet
	nodes []*node
	root  ref
	stats BuildStats
	ar    arena // flat SoA lookup structure; see arena.go

	// levelOff[l] is the first node id of level l after the level-major
	// reorder (levelOff[depth] == len(nodes)); nil when the reorder was
	// disabled. stageFill[l] counts packets entering level l on the
	// pipelined batch walk (the per-stage fill profile; see StageFill).
	levelOff  []int32
	stageFill []atomic.Uint64

	image     *memlayout.Image
	rootPtr   uint32
	nodeAddrs []uint32 // per node: pointer word (channel+offset encoded)
}

// builder carries the construction state of one build goroutine. Builders
// append into their own nodes slice (merged by ref-offset remapping when
// building in parallel) and share the governor and the MaxNodes counter,
// so budget accounting stays exact across the pool.
type builder struct {
	t     *Tree
	gov   *buildgov.Governor
	memo  map[string]ref // builder-scoped memo (ShareGlobal only)
	sig   []byte
	mode  SharingMode
	nodes []*node
	count *atomic.Int64 // total nodes across all builders, vs cfg.MaxNodes
}

// New builds an ExpCuts tree over the rule set and serializes it.
func New(rs *rules.RuleSet, cfg Config) (*Tree, error) {
	return NewCtx(context.Background(), rs, cfg, nil)
}

// NewCtx is New under governance: the build cooperatively checks ctx and
// charges nodes, memo entries and estimated heap bytes against budget
// (nil budget = ctx only) in every recursion step, so a runaway build on
// an adversarial rule set aborts in bounded time with a typed
// *buildgov.BudgetError instead of hanging or exhausting memory.
func NewCtx(ctx context.Context, rs *rules.RuleSet, cfg Config, budget *buildgov.Budget) (*Tree, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, rs: rs}
	gov := buildgov.Start(ctx, budget)
	all := make([]int32, rs.Len())
	for i := range all {
		all[i] = int32(i)
	}
	var count atomic.Int64
	if cfg.BuildWorkers > 1 {
		root, err := t.buildParallel(gov, &count, all, cfg.BuildWorkers)
		if err != nil {
			return nil, err
		}
		t.root = root
	} else {
		b := &builder{t: t, mode: cfg.Sharing, gov: gov, count: &count}
		if b.mode == ShareGlobal {
			b.memo = make(map[string]ref)
		}
		root, err := b.build(0, rules.FullBox(), all, b.memo)
		if err != nil {
			return nil, err
		}
		t.root = root
		t.nodes = b.nodes
	}
	if !cfg.noLevelMajor {
		t.reorderLevelMajor()
	}
	t.stageFill = make([]atomic.Uint64, t.Depth())
	t.collectStats()
	if err := t.buildArena(); err != nil {
		return nil, err
	}
	if err := t.serialize(); err != nil {
		return nil, err
	}
	return t, nil
}

// build constructs the sub-tree for the box starting at key bit position
// pos, holding ruleIdx (priority order, all intersecting box). memo is the
// sharing scope this node participates in: the global map (ShareGlobal), a
// map shared with its siblings only (ShareSiblings), or nil (ShareNone).
func (b *builder) build(pos uint, box rules.Box, ruleIdx []int32, memo map[string]ref) (ref, error) {
	t := b.t
	if err := b.gov.Check(); err != nil {
		return 0, err
	}
	// Rule overlap pruning: a rule covering the whole box shadows all
	// lower-priority rules.
	for k, ri := range ruleIdx {
		if t.rs.Rules[ri].Box().Covers(box) {
			ruleIdx = ruleIdx[:k+1]
			break
		}
	}
	if len(ruleIdx) == 0 {
		return refNoMatch, nil
	}
	top := ruleIdx[0]
	// Leaf when the sub-space is fully resolved: the highest-priority
	// intersecting rule covers it (then it wins everywhere inside), or
	// all 104 bits are consumed (the box is a single point, which every
	// remaining rule covers).
	if pos >= rules.KeyBits || t.rs.Rules[top].Box().Covers(box) {
		return refLeaf(int(top)), nil
	}

	var key string
	if memo != nil {
		key = b.signature(pos, box, ruleIdx)
		if r, ok := memo[key]; ok {
			return r, nil
		}
	}

	w := t.cfg.StrideW
	dim := dimOfBit(pos)
	cells := 1 << w
	log2cw := uint(rules.DimBits[dim]) - (pos - rules.DimOffset[dim]) - w

	// Distribute rules to cells along dim.
	cellRules := make([][]int32, cells)
	boxLo := box[dim].Lo
	for _, ri := range ruleIdx {
		clip, ok := t.rs.Rules[ri].Span(dim).Intersect(box[dim])
		if !ok {
			continue
		}
		lo := int(uint64(clip.Lo-boxLo) >> log2cw)
		hi := int(uint64(clip.Hi-boxLo) >> log2cw)
		for c := lo; c <= hi; c++ {
			cellRules[c] = append(cellRules[c], ri)
		}
	}

	childMemo := memo // ShareGlobal: one map for the whole tree
	if b.mode == ShareSiblings {
		childMemo = make(map[string]ref)
	}
	n := &node{level: int(pos / w), ptrs: make([]ref, cells)}
	for c := 0; c < cells; c++ {
		cellBox := box
		cellBox[dim] = rules.Span{
			Lo: boxLo + uint32(uint64(c)<<log2cw),
			Hi: boxLo + uint32(uint64(c+1)<<log2cw) - 1,
		}
		child, err := b.build(pos+w, cellBox, cellRules[c], childMemo)
		if err != nil {
			return 0, err
		}
		n.ptrs[c] = child
	}
	// The MaxNodes counter is shared by every builder of a parallel build,
	// so the cap bounds the whole tree; with in-flight charges the total
	// can overshoot by at most one node per worker.
	if int(b.count.Add(1)) > t.cfg.MaxNodes {
		return 0, fmt.Errorf("expcuts: node budget %d exhausted (rule set %q, w=%d, sharing %v)",
			t.cfg.MaxNodes, t.rs.Name, w, b.mode)
	}
	// Charge the node (pointer array + header + amortized expansion
	// scratch — see the constants below) and, below, its memo entry (key
	// bytes + map slot) against the governor.
	if err := b.gov.Nodes(1, int64(cells)*8+nodeOverheadBytes); err != nil {
		return 0, err
	}
	id := ref(len(b.nodes))
	b.nodes = append(b.nodes, n)
	if memo != nil {
		if err := b.gov.Memo(1, int64(len(key))+memoOverheadBytes); err != nil {
			return 0, err
		}
		memo[key] = id
	}
	return id, nil
}

// Estimated per-entry heap costs used by the governor's byte accounting.
// A node charges cells*8 + nodeOverheadBytes: the live ptrs array is
// cells*4, and the other cells*4 amortizes the per-cell rule-distribution
// slices the builder allocates while expanding the node — transient, but
// what actually drives peak heap during a blowup. Calibrated against
// measured peak HeapAlloc on ACL-family builds at 10k/100k rules, where
// the previous cells*4+48 charge ran ~4× under the real peak in the
// early, rule-heavy phase of the build (trips fired *after* the blowup);
// with this accounting the estimate stays within the 3× band buildgov's
// TestEstimateAccuracyAtScale enforces, converging to ~1× over long
// builds.
const (
	nodeOverheadBytes = 256
	memoOverheadBytes = 64
)

// signature produces the sharing key for a sub-space: the bit position plus
// each intersecting rule's identity and box-relative clipped geometry. Two
// sub-spaces with equal signatures have identical sub-trees: all boxes at
// one bit position are translates of the same shape, lookups index children
// by key-bit extraction (box-independent), and the relative geometry fixes
// every later cut decision.
func (b *builder) signature(pos uint, box rules.Box, ruleIdx []int32) string {
	sig := b.sig[:0]
	sig = binary.AppendUvarint(sig, uint64(pos))
	for _, ri := range ruleIdx {
		sig = binary.AppendUvarint(sig, uint64(ri))
		for d := 0; d < rules.NumDims; d++ {
			clip, _ := b.t.rs.Rules[ri].Span(rules.Dim(d)).Intersect(box[d])
			sig = binary.AppendUvarint(sig, uint64(clip.Lo-box[d].Lo))
			sig = binary.AppendUvarint(sig, uint64(clip.Hi-box[d].Lo))
		}
	}
	b.sig = sig
	return string(sig)
}

// dimOfBit returns the dimension owning key bit position pos.
func dimOfBit(pos uint) rules.Dim {
	for d := 0; d < rules.NumDims; d++ {
		if pos < rules.DimOffset[d]+rules.DimBits[d] {
			return rules.Dim(d)
		}
	}
	panic(fmt.Sprintf("expcuts: bit position %d beyond key", pos))
}

// Classify is the native (untraced) lookup, walking the flat node arena:
// per level one HABS word load, a popcount rank, and one CPA pointer load
// — the in-memory mirror of the serialized SRAM access pattern, with no
// per-node Go pointers to chase.
func (t *Tree) Classify(h rules.Header) int {
	k := h.Key()
	w := t.cfg.StrideW
	u := w - t.cfg.HabsV
	lowU := uint32(1)<<u - 1
	r := t.root
	pos := uint(0)
	for r >= 0 {
		c := k.Bits(pos, w)
		rank := uint32(bits.OnesCount64(t.ar.habs[r]&(uint64(2)<<(c>>u)-1))) - 1
		r = t.ar.cpa[t.ar.cpaBase[r]+rank<<u+(c&lowU)]
		pos += w
	}
	if r == refNoMatch {
		return -1
	}
	return refRule(r)
}

// classifyGraph walks the builder's pointer graph. It exists to cross-check
// the arena walk in tests; serving always uses Classify/ClassifyBatch.
func (t *Tree) classifyGraph(h rules.Header) int {
	k := h.Key()
	w := t.cfg.StrideW
	r := t.root
	pos := uint(0)
	for r >= 0 {
		r = t.nodes[r].ptrs[k.Bits(pos, w)]
		pos += w
	}
	if r == refNoMatch {
		return -1
	}
	return refRule(r)
}

// Name identifies the algorithm in reports.
func (t *Tree) Name() string { return "ExpCuts" }

// Stats returns build statistics.
func (t *Tree) Stats() BuildStats { return t.stats }

// MemoryBytes returns the aggregated (HABS/CPA) serialized footprint.
func (t *Tree) MemoryBytes() int { return t.image.TotalBytes() }

// Image exposes the serialized SRAM image.
func (t *Tree) Image() *memlayout.Image { return t.image }

// Depth returns the explicit tree depth ⌈104/w⌉.
func (t *Tree) Depth() int { return int((rules.KeyBits + t.cfg.StrideW - 1) / t.cfg.StrideW) }

// StageFill snapshots the cumulative per-stage fill of the pipelined batch
// walk: element l is the total number of packets that entered level l across
// all ClassifyBatchPipelined calls since the tree was built. Dividing by
// element 0 gives the survival profile — how much of each batch is still
// unresolved at each pipeline stage, the software mirror of per-stage
// occupancy on a hardware pipeline. Safe to call concurrently with serving.
func (t *Tree) StageFill() []uint64 {
	out := make([]uint64, len(t.stageFill))
	for i := range t.stageFill {
		out[i] = t.stageFill[i].Load()
	}
	return out
}

func (t *Tree) collectStats() {
	st := &t.stats
	st.Depth = t.Depth()
	st.NodesPerLevel = make([]int, st.Depth)
	st.Nodes = len(t.nodes)
	st.WorstCaseAccesses = 2 * st.Depth
	uniqueTotal := 0
	cells := 1 << t.cfg.StrideW
	sub := 1 << (t.cfg.StrideW - t.cfg.HabsV)
	distinct := make(map[ref]bool, 1<<t.cfg.StrideW)
	for _, n := range t.nodes {
		st.NodesPerLevel[n.level]++
		clear(distinct)
		for _, p := range n.ptrs {
			distinct[p] = true
		}
		uniqueTotal += len(distinct)
		// Aggregated: 1 HABS word + one 2^u-pointer sub-array per set bit.
		subArrays := 1
		for i := sub; i < cells; i += sub {
			if !equalRefs(n.ptrs[i-sub:i], n.ptrs[i:i+sub]) {
				subArrays++
			}
		}
		st.MemoryWordsAggregated += 1 + subArrays*sub
		// Full: the raw 2^w pointer array.
		st.MemoryWordsFull += cells
	}
	if st.Nodes > 0 {
		st.AvgUniqueChildren = float64(uniqueTotal) / float64(st.Nodes)
	}
}

func equalRefs(a, b []ref) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
