package expcuts

import (
	"runtime/debug"
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func batchFixture(t *testing.T) (*Tree, []rules.Header) {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 300, Seed: 801})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 256, Seed: 802, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return tree, tr.Headers
}

// TestClassifyBatchZeroAllocSteadyState is the allocation regression gate
// of the serving fast path: after the pooled scratch is warm, a 64-packet
// ClassifyBatch must not allocate at all. GC is disabled for the
// measurement so a collection cannot empty the pool mid-run and charge
// the refill to the batch.
func TestClassifyBatchZeroAllocSteadyState(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool drops random Puts under the race detector; the gate runs in the non-race pass")
	}
	tree, hs := batchFixture(t)
	batch := hs[:64]
	out := make([]int, len(batch))
	tree.ClassifyBatch(batch, out) // warm the pool

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := testing.AllocsPerRun(100, func() {
		tree.ClassifyBatch(batch, out)
	}); n != 0 {
		t.Fatalf("steady-state ClassifyBatch allocates %.2f times per op, want 0", n)
	}
}

// TestClassifyBatchDegenerateTree covers the root-is-terminal shape (a
// single wildcard rule collapses the whole tree into one leaf ref), which
// the level-synchronous walk special-cases.
func TestClassifyBatchDegenerateTree(t *testing.T) {
	rs := rules.NewRuleSet("wildcard", []rules.Rule{{
		SrcPort: rules.FullPortRange,
		DstPort: rules.FullPortRange,
		Proto:   rules.AnyProto,
	}})
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := []rules.Header{
		{},
		{SrcIP: 0xFFFFFFFF, DstIP: 0xFFFFFFFF, SrcPort: 65535, DstPort: 65535, Proto: 255},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rules.ProtoTCP},
	}
	out := make([]int, len(hs))
	tree.ClassifyBatch(hs, out)
	for i, h := range hs {
		if want := tree.Classify(h); out[i] != want {
			t.Errorf("packet %d: batch %d, scalar %d", i, out[i], want)
		}
	}
}

// TestClassifyBatchSharedOut pins the in-place trick: the out slice is
// used to carry tree positions during the walk, so consecutive batches
// reusing the same out slice must not leak state across calls.
func TestClassifyBatchSharedOut(t *testing.T) {
	tree, hs := batchFixture(t)
	out := make([]int, 64)
	want := make([]int, 64)
	for round := 0; round < 4; round++ {
		batch := hs[round*64 : (round+1)*64]
		tree.ClassifyBatch(batch, out)
		for i, h := range batch {
			want[i] = tree.Classify(h)
		}
		for i := range batch {
			if out[i] != want[i] {
				t.Fatalf("round %d packet %d: batch %d, scalar %d", round, i, out[i], want[i])
			}
		}
	}
}
