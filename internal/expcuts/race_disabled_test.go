//go:build !race

package expcuts

// See race_enabled_test.go.
const raceDetectorEnabled = false
