package hsm

import (
	"fmt"

	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/rules"
)

// layout records where each HSM structure landed in the SRAM image. The
// nine independent structures (five dimension tables, four cross-product
// tables) are distributed round-robin across the configured channels so
// the per-lookup reads spread over all controllers.
type layout struct {
	segLo                               [rules.NumDims]place
	classID                             [rules.NumDims]place
	tabIP, tabPort, tabIPPort, tabFinal place
}

type place struct {
	ch   uint8
	base uint32
}

func (c *Classifier) serialize() {
	c.image = memlayout.NewImage()
	next := 0
	spot := func() uint8 {
		ch := uint8(next % c.cfg.Channels)
		next++
		return ch
	}
	for d := 0; d < rules.NumDims; d++ {
		ch := spot()
		c.lay.segLo[d] = place{ch, c.image.Alloc(ch, c.dims[d].segLo)}
		c.lay.classID[d] = place{ch, c.image.Alloc(ch, c.dims[d].classID)}
	}
	for _, t := range []struct {
		tab *pairTable
		dst *place
	}{
		{&c.tabIP, &c.lay.tabIP},
		{&c.tabPort, &c.lay.tabPort},
		{&c.tabIPPort, &c.lay.tabIPPort},
		{&c.tabFinal, &c.lay.tabFinal},
	} {
		ch := spot()
		*t.dst = place{ch, c.image.Alloc(ch, t.tab.data)}
	}
}

// Lookup runs the serialized lookup against mem: per dimension a binary
// search of single-word reads plus one class-ID read, then the four table
// reads — every access a single 32-bit word, the property the paper
// credits HSM's speed to (§6.6).
func (c *Classifier) Lookup(mem nptrace.Mem, h rules.Header) int {
	costs := nptrace.DefaultCosts
	var cls [rules.NumDims]uint32
	for d := 0; d < rules.NumDims; d++ {
		dt := &c.dims[d]
		pl := c.lay.segLo[d]
		lo, hi := 0, len(dt.segLo) // invariant: segment in [lo, hi)
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			mem.Compute(2*costs.ALU + costs.IssueIO)
			v := mem.Read(pl.ch, pl.base+uint32(mid), 1)[0]
			mem.Compute(costs.Branch)
			if v > h.Field(rules.Dim(d)) {
				hi = mid
			} else {
				lo = mid
			}
		}
		cpl := c.lay.classID[d]
		mem.Compute(costs.IssueIO)
		cls[d] = mem.Read(cpl.ch, cpl.base+uint32(lo), 1)[0]
	}
	readTab := func(pl place, tab *pairTable, a, b uint32) uint32 {
		mem.Compute(2*costs.ALU + costs.IssueIO) // multiply-accumulate index
		return mem.Read(pl.ch, pl.base+a*uint32(tab.nB)+b, 1)[0]
	}
	ip := readTab(c.lay.tabIP, &c.tabIP, cls[0], cls[1])
	port := readTab(c.lay.tabPort, &c.tabPort, cls[2], cls[3])
	comb := readTab(c.lay.tabIPPort, &c.tabIPPort, ip, port)
	final := readTab(c.lay.tabFinal, &c.tabFinal, comb, cls[4])
	return int(final) - 1
}

// Program records the access program for one header.
func (c *Classifier) Program(h rules.Header) nptrace.Program {
	rec := nptrace.NewRecorder(c.image)
	return rec.Finish(c.Lookup(rec, h))
}

// Verify cross-checks the serialized lookup against the native one.
func (c *Classifier) Verify(headers []rules.Header) error {
	mem := nptrace.NullMem{R: c.image}
	for _, h := range headers {
		if got, want := c.Lookup(mem, h), c.Classify(h); got != want {
			return fmt.Errorf("hsm: serialized lookup %d != native %d for %v", got, want, h)
		}
	}
	return nil
}
