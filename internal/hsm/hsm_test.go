package hsm

import (
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func buildSet(t *testing.T, kind rulegen.Kind, size int, seed int64) *rules.RuleSet {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: kind, Size: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func trace(t *testing.T, rs *rules.RuleSet, n int, seed int64) []rules.Header {
	t.Helper()
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: seed, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Headers
}

func TestClassifyMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		kind rulegen.Kind
		size int
	}{
		{rulegen.Firewall, 85},
		{rulegen.Firewall, 200},
		{rulegen.CoreRouter, 250},
		{rulegen.Random, 80},
	} {
		rs := buildSet(t, tc.kind, tc.size, 41)
		c, err := New(rs, Config{})
		if err != nil {
			t.Fatalf("%v/%d: %v", tc.kind, tc.size, err)
		}
		for _, h := range trace(t, rs, 2000, 42) {
			if got, want := c.Classify(h), rs.Match(h); got != want {
				t.Fatalf("%v/%d: Classify(%v) = %d, oracle = %d", tc.kind, tc.size, h, got, want)
			}
		}
	}
}

func TestSerializedLookupMatchesNative(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 200, 43)
	c, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(trace(t, rs, 3000, 44)); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentLookup(t *testing.T) {
	rs := rules.NewRuleSet("segs", []rules.Rule{
		{SrcPort: rules.PortRange{Lo: 100, Hi: 200}, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
		{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto},
	})
	c, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	dt := &c.dims[rules.DimSrcPort]
	// Segments: [0,99] [100,200] [201,65535].
	if len(dt.segLo) != 3 {
		t.Fatalf("segments = %d, want 3", len(dt.segLo))
	}
	for _, tc := range []struct {
		v    uint32
		want int
	}{
		{0, 0}, {99, 0}, {100, 1}, {200, 1}, {201, 2}, {65535, 2},
	} {
		if got := dt.segment(tc.v); got != tc.want {
			t.Errorf("segment(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestStatsShape(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 300, 45)
	c, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// IP dims should have many segments (prefix pairs), proto few.
	if st.Segments[rules.DimSrcIP] < 50 {
		t.Errorf("srcIP segments = %d, suspiciously few", st.Segments[rules.DimSrcIP])
	}
	if st.Segments[rules.DimProto] > 10 {
		t.Errorf("proto segments = %d, suspiciously many", st.Segments[rules.DimProto])
	}
	if st.MemoryWords != c.MemoryBytes()/4 {
		t.Errorf("MemoryWords %d inconsistent with MemoryBytes %d", st.MemoryWords, c.MemoryBytes())
	}
	if st.WorstCaseAccesses < 9 {
		t.Errorf("WorstCaseAccesses = %d, must include 5 class reads + 4 table reads", st.WorstCaseAccesses)
	}
}

func TestProgramWithinWorstCase(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 120, 46)
	c, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bound := c.Stats().WorstCaseAccesses
	for _, h := range trace(t, rs, 800, 47) {
		p := c.Program(h)
		if p.Result != c.Classify(h) {
			t.Fatalf("program result mismatch for %v", h)
		}
		if p.Accesses() > bound {
			t.Fatalf("program used %d accesses, bound %d", p.Accesses(), bound)
		}
		// Every HSM access is a single word.
		for _, s := range p.Steps {
			if s.Words != 1 {
				t.Fatalf("HSM access of %d words; all accesses must be single-word", s.Words)
			}
		}
	}
}

func TestChannelRestriction(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 90, 48)
	for channels := 1; channels <= 4; channels++ {
		c, err := New(rs, Config{Channels: channels})
		if err != nil {
			t.Fatal(err)
		}
		words := c.Image().ChannelWords()
		for ch := channels; ch < len(words); ch++ {
			if words[ch] != 0 {
				t.Errorf("channels=%d: channel %d has %d words", channels, ch, words[ch])
			}
		}
		if err := c.Verify(trace(t, rs, 300, 49)); err != nil {
			t.Fatalf("channels=%d: %v", channels, err)
		}
	}
}

func TestTableCap(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 300, 50)
	if _, err := New(rs, Config{MaxTableEntries: 100}); err == nil {
		t.Error("tiny table cap should fail construction")
	}
}

func TestConfigValidation(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 20, 51)
	if _, err := New(rs, Config{Channels: 9}); err == nil {
		t.Error("bad channel count should be rejected")
	}
}

func TestNoMatchReturnsMinusOne(t *testing.T) {
	// A set with no default rule: headers outside every rule must yield -1.
	rs := rules.NewRuleSet("narrow", []rules.Rule{
		{
			SrcIP:   rules.Prefix{Addr: 0x0A000000, Len: 8},
			DstIP:   rules.Prefix{Addr: 0x0B000000, Len: 8},
			SrcPort: rules.FullPortRange,
			DstPort: rules.PortRange{Lo: 80, Hi: 80},
			Proto:   rules.ProtoMatch{Value: rules.ProtoTCP},
		},
	})
	c, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Classify(rules.Header{SrcIP: 0x0C000001}); got != -1 {
		t.Errorf("Classify = %d, want -1", got)
	}
	if got := c.Classify(rules.Header{SrcIP: 0x0A000001, DstIP: 0x0B000001, DstPort: 80, Proto: rules.ProtoTCP}); got != 0 {
		t.Errorf("Classify = %d, want 0", got)
	}
}
