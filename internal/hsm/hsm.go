// Package hsm implements Hierarchical Space Mapping (Xu, Jiang & Li, AINA
// 2005), the field-independent baseline of the paper's comparison. Each of
// the five header fields is independently mapped to a segment by binary
// search; segments carry equivalence-class IDs, and pairwise cross-product
// tables combine classes hierarchically —
//
//	(srcIP, dstIP)   → IP class
//	(srcPort, dstPort) → port class
//	(IP, port)       → combined class
//	(combined, proto) → matching rule
//
// — so a lookup costs Θ(log N) single-word SRAM reads for the binary
// searches plus four table reads, while the cross-product tables consume
// the "tens of megabytes" the paper attributes to field-independent schemes
// (§2). Each equivalence class is the bitset of rules matching a region;
// the final table stores the lowest-set bit (highest-priority rule).
package hsm

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/buildgov"
	"repro/internal/memlayout"
	"repro/internal/rules"
)

// Config parameterizes HSM construction.
type Config struct {
	// Channels is the number of SRAM channels the serialized structures
	// are spread across (1..4).
	Channels int
	// MaxTableEntries caps any single cross-product table; construction
	// fails beyond it rather than exhausting memory. Zero means the
	// default of 64 Mi entries.
	MaxTableEntries int
}

// DefaultConfig uses all four SRAM channels.
func DefaultConfig() Config {
	return Config{Channels: memlayout.NumChannels, MaxTableEntries: 64 << 20}
}

func (c *Config) fillDefaults() error {
	d := DefaultConfig()
	if c.Channels == 0 {
		c.Channels = d.Channels
	}
	if c.MaxTableEntries == 0 {
		c.MaxTableEntries = d.MaxTableEntries
	}
	if c.Channels < 1 || c.Channels > memlayout.NumChannels {
		return fmt.Errorf("hsm: channels %d out of [1,%d]", c.Channels, memlayout.NumChannels)
	}
	return nil
}

// dimTable is the phase-0 structure of one dimension: sorted segment start
// values for binary search, and the equivalence class of each segment.
type dimTable struct {
	segLo   []uint32
	classID []uint32
	classes []bitset.Set
}

// segment returns the index of the segment containing v: the largest i
// with segLo[i] <= v.
func (d *dimTable) segment(v uint32) int {
	// sort.Search returns the first i with segLo[i] > v; the segment is
	// the one before it. segLo[0] == 0, so i >= 1.
	return sort.Search(len(d.segLo), func(i int) bool { return d.segLo[i] > v }) - 1
}

// pairTable is one cross-product table: data[a*strideB+b].
type pairTable struct {
	nA, nB int
	data   []uint32
}

func (p *pairTable) at(a, b uint32) uint32 {
	return p.data[int(a)*p.nB+int(b)]
}

// BuildStats reports the sizes that drive HSM's time/space profile.
type BuildStats struct {
	// Segments and Classes per dimension.
	Segments [rules.NumDims]int
	Classes  [rules.NumDims]int
	// IPClasses, PortClasses and CombinedClasses are the intermediate
	// equivalence-class counts.
	IPClasses, PortClasses, CombinedClasses int
	// MemoryWords is the serialized SRAM footprint.
	MemoryWords int
	// WorstCaseAccesses is the SRAM command bound per lookup.
	WorstCaseAccesses int
}

// Classifier is a built HSM classifier.
type Classifier struct {
	cfg                                 Config
	rs                                  *rules.RuleSet
	gov                                 *buildgov.Governor
	dims                                [rules.NumDims]dimTable
	tabIP, tabPort, tabIPPort, tabFinal pairTable
	stats                               BuildStats

	image *memlayout.Image
	lay   layout
}

// New builds the HSM structures and their serialized image.
func New(rs *rules.RuleSet, cfg Config) (*Classifier, error) {
	return NewCtx(context.Background(), rs, cfg, nil)
}

// NewCtx is New under governance: the segment sweeps and cross-producting
// loops cooperatively check ctx and charge rows / estimated table bytes
// against budget (nil = ctx only). Cross-product tables are charged
// *before* allocation, so an absurd table is refused without ever being
// held in memory.
func NewCtx(ctx context.Context, rs *rules.RuleSet, cfg Config, budget *buildgov.Budget) (*Classifier, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	c := &Classifier{cfg: cfg, rs: rs, gov: buildgov.Start(ctx, budget)}

	// Phase 0: per-dimension segments and classes.
	n := rs.Len()
	for d := 0; d < rules.NumDims; d++ {
		segs := rules.ProjectedSegments(rs, rules.Dim(d))
		dt := dimTable{
			segLo:   make([]uint32, len(segs)),
			classID: make([]uint32, len(segs)),
		}
		in := bitset.NewInterner()
		for i, seg := range segs {
			// Each segment costs an O(rules) sweep plus its class
			// bitset: one governed row.
			if err := c.gov.Nodes(1, int64(n/8)+16); err != nil {
				return nil, err
			}
			dt.segLo[i] = seg.Lo
			bs := bitset.New(n)
			for ri := range rs.Rules {
				if rs.Rules[ri].Span(rules.Dim(d)).Covers(seg) {
					bs.Add(ri)
				}
			}
			dt.classID[i] = in.Intern(bs)
		}
		for id := 0; id < in.Len(); id++ {
			dt.classes = append(dt.classes, in.Class(uint32(id)))
		}
		c.dims[d] = dt
		c.stats.Segments[d] = len(segs)
		c.stats.Classes[d] = in.Len()
	}

	// Phases 1–3: hierarchical cross-producting.
	var err error
	var ipClasses, portClasses, combClasses []bitset.Set
	if c.tabIP, ipClasses, err = c.cross(c.dims[0].classes, c.dims[1].classes); err != nil {
		return nil, err
	}
	if c.tabPort, portClasses, err = c.cross(c.dims[2].classes, c.dims[3].classes); err != nil {
		return nil, err
	}
	if c.tabIPPort, combClasses, err = c.cross(ipClasses, portClasses); err != nil {
		return nil, err
	}
	if c.tabFinal, err = c.crossFinal(combClasses, c.dims[4].classes); err != nil {
		return nil, err
	}
	c.stats.IPClasses = len(ipClasses)
	c.stats.PortClasses = len(portClasses)
	c.stats.CombinedClasses = len(combClasses)

	c.serialize()
	c.stats.MemoryWords = c.image.TotalWords()
	c.stats.WorstCaseAccesses = c.worstCaseAccesses()
	return c, nil
}

// cross builds the table combining two class families into intersection
// classes.
func (c *Classifier) cross(a, b []bitset.Set) (pairTable, []bitset.Set, error) {
	if len(a)*len(b) > c.cfg.MaxTableEntries {
		return pairTable{}, nil, fmt.Errorf("hsm: cross-product table %d×%d exceeds cap %d entries",
			len(a), len(b), c.cfg.MaxTableEntries)
	}
	// Charge the table before allocating it.
	if err := c.gov.Bytes(int64(len(a)) * int64(len(b)) * 4); err != nil {
		return pairTable{}, nil, err
	}
	tab := pairTable{nA: len(a), nB: len(b), data: make([]uint32, len(a)*len(b))}
	in := bitset.NewInterner()
	scratch := bitset.New(c.rs.Len())
	for i, bsA := range a {
		if err := c.gov.Nodes(1, 0); err != nil {
			return pairTable{}, nil, err
		}
		for j, bsB := range b {
			// Per-cell poll keeps deadline overshoot at cell granularity
			// even when rows are tens of thousands of cells wide.
			if err := c.gov.Check(); err != nil {
				return pairTable{}, nil, err
			}
			bitset.AndInto(scratch, bsA, bsB)
			tab.data[i*tab.nB+j] = in.Intern(scratch)
		}
	}
	// Interned intersection classes are this phase's memo table.
	if err := c.gov.Memo(in.Len(), int64(in.Len())*int64(c.rs.Len()/8+16)); err != nil {
		return pairTable{}, nil, err
	}
	classes := make([]bitset.Set, in.Len())
	for id := range classes {
		classes[id] = in.Class(uint32(id))
	}
	return tab, classes, nil
}

// crossFinal builds the last table, mapping straight to rule index + 1
// (0 = no match).
func (c *Classifier) crossFinal(a, b []bitset.Set) (pairTable, error) {
	if len(a)*len(b) > c.cfg.MaxTableEntries {
		return pairTable{}, fmt.Errorf("hsm: final table %d×%d exceeds cap %d entries",
			len(a), len(b), c.cfg.MaxTableEntries)
	}
	if err := c.gov.Bytes(int64(len(a)) * int64(len(b)) * 4); err != nil {
		return pairTable{}, err
	}
	tab := pairTable{nA: len(a), nB: len(b), data: make([]uint32, len(a)*len(b))}
	scratch := bitset.New(c.rs.Len())
	for i, bsA := range a {
		if err := c.gov.Nodes(1, 0); err != nil {
			return pairTable{}, err
		}
		for j, bsB := range b {
			if err := c.gov.Check(); err != nil {
				return pairTable{}, err
			}
			bitset.AndInto(scratch, bsA, bsB)
			tab.data[i*tab.nB+j] = uint32(scratch.First() + 1)
		}
	}
	return tab, nil
}

// Classify performs the native (untraced) lookup.
func (c *Classifier) Classify(h rules.Header) int {
	var cls [rules.NumDims]uint32
	for d := 0; d < rules.NumDims; d++ {
		dt := &c.dims[d]
		cls[d] = dt.classID[dt.segment(h.Field(rules.Dim(d)))]
	}
	ip := c.tabIP.at(cls[0], cls[1])
	port := c.tabPort.at(cls[2], cls[3])
	comb := c.tabIPPort.at(ip, port)
	return int(c.tabFinal.at(comb, cls[4])) - 1
}

// ClassifyBatch classifies hs[i] into out[i] (the engine's
// BatchClassifier contract; out must be at least as long as hs). The
// per-packet lookup keeps its class scratch on the stack, so the loop is
// already allocation-free; the batch form amortizes dispatch and keeps
// the segment arrays hot across consecutive packets.
func (c *Classifier) ClassifyBatch(hs []rules.Header, out []int) {
	out = out[:len(hs)]
	for i, h := range hs {
		out[i] = c.Classify(h)
	}
}

// Name identifies the algorithm in reports.
func (c *Classifier) Name() string { return "HSM" }

// Stats returns build statistics.
func (c *Classifier) Stats() BuildStats { return c.stats }

// MemoryBytes returns the serialized SRAM footprint.
func (c *Classifier) MemoryBytes() int { return c.image.TotalBytes() }

// Image exposes the serialized SRAM image.
func (c *Classifier) Image() *memlayout.Image { return c.image }

// worstCaseAccesses bounds lookup SRAM commands: the binary searches plus
// one class read per dimension plus the four table reads.
func (c *Classifier) worstCaseAccesses() int {
	total := rules.NumDims + 4
	for d := 0; d < rules.NumDims; d++ {
		total += ceilLog2(len(c.dims[d].segLo))
	}
	return total
}

func ceilLog2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
