package nptrace

import (
	"reflect"
	"testing"
)

// fakeReader returns predictable words and counts reads.
type fakeReader struct {
	reads int
}

func (f *fakeReader) Read(ch uint8, addr uint32, words int) []uint32 {
	f.reads++
	out := make([]uint32, words)
	for i := range out {
		out[i] = uint32(ch)<<24 | addr + uint32(i)
	}
	return out
}

func TestRecorderBuildsProgram(t *testing.T) {
	f := &fakeReader{}
	r := NewRecorder(f)
	r.Compute(10)
	if got := r.Read(2, 100, 2); !reflect.DeepEqual(got, []uint32{2<<24 | 100, 2<<24 | 101}) {
		t.Errorf("Read passthrough = %v", got)
	}
	r.Compute(3)
	r.Compute(4)
	r.Read(0, 5, 1)
	r.Compute(7)
	p := r.Finish(42)

	want := Program{
		Steps: []Step{
			{Compute: 10, Channel: 2, Addr: 100, Words: 2},
			{Compute: 7, Channel: 0, Addr: 5, Words: 1},
		},
		FinalCompute: 7,
		Result:       42,
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("program = %+v, want %+v", p, want)
	}
	if p.Accesses() != 2 || p.Words() != 3 {
		t.Errorf("Accesses=%d Words=%d", p.Accesses(), p.Words())
	}
	if p.ComputeCycles() != 10+7+7 {
		t.Errorf("ComputeCycles = %d", p.ComputeCycles())
	}
	if f.reads != 2 {
		t.Errorf("underlying reads = %d", f.reads)
	}
}

func TestRecorderResetsAfterFinish(t *testing.T) {
	r := NewRecorder(&fakeReader{})
	r.Compute(5)
	r.Read(1, 1, 1)
	_ = r.Finish(0)
	r.Read(3, 9, 4)
	p := r.Finish(-1)
	if len(p.Steps) != 1 || p.Steps[0].Compute != 0 || p.Steps[0].Channel != 3 {
		t.Errorf("recorder not reset: %+v", p)
	}
	if p.Result != -1 {
		t.Errorf("result = %d", p.Result)
	}
}

func TestNullMem(t *testing.T) {
	f := &fakeReader{}
	m := NullMem{R: f}
	m.Compute(1000) // discarded
	if got := m.Read(1, 7, 1); got[0] != 1<<24|7 {
		t.Errorf("Read = %v", got)
	}
	if f.reads != 1 {
		t.Errorf("reads = %d", f.reads)
	}
}

func TestProgramString(t *testing.T) {
	p := Program{Steps: []Step{{Words: 6}}, Result: 3}
	s := p.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestDefaultCosts(t *testing.T) {
	// The POP_COUNT ablation depends on the hardware instruction being
	// far cheaper than the RISC emulation (§5.4: >90% reduction).
	if DefaultCosts.PopCount*10 >= DefaultCosts.PopCountRISC {
		t.Errorf("POP_COUNT (%d) should be >10x cheaper than RISC emulation (%d)",
			DefaultCosts.PopCount, DefaultCosts.PopCountRISC)
	}
}
