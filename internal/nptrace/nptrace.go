// Package nptrace captures per-packet *access programs*: the sequence of
// compute bursts and SRAM reads a classifier performs for one header. This
// is the bridge between the algorithms and the IXP2850 model — each
// classifier's serialized lookup runs against the Mem interface, and a
// Recorder turns that run into a replayable program whose cost the
// discrete-event simulator (internal/npsim) charges against microengines,
// threads and SRAM channels.
//
// The paper's methodology is exactly this split: algorithm behaviour
// determines how many word-oriented SRAM accesses a packet needs and on
// which channel; the NP's job is to hide their latency with hardware
// threads until a channel saturates (§6.7).
package nptrace

import "fmt"

// Mem is the memory interface serialized lookups run against. Read returns
// `words` consecutive 32-bit words starting at the word address addr on the
// given SRAM channel — one SRAM command, regardless of burst length (the
// IXP SRAM controller accepts multi-word bursts per command; both the word
// count and the command count are modelled, since the paper identifies both
// bandwidth and I/O command rate as bottlenecks).
//
// Compute accounts ME cycles spent between memory operations (ALU ops,
// POP_COUNT, branches).
type Mem interface {
	Read(ch uint8, addr uint32, words int) []uint32
	Compute(cycles uint32)
}

// Costs is the ME cycle cost model for the compute phases of a lookup,
// matching §5.4 of the paper.
type Costs struct {
	// PopCount is the cost of the hardware POP_COUNT instruction.
	PopCount uint32
	// PopCountRISC is the cost of emulating popcount with RISC ALU ops;
	// the paper reports >100 instructions. Used by the POP_COUNT ablation.
	PopCountRISC uint32
	// ALU is the cost of one ALU operation (shift, mask, add, compare).
	ALU uint32
	// Branch is the cost of a (possibly mispredicted) branch.
	Branch uint32
	// IssueIO is the ME-side cost of issuing one SRAM command.
	IssueIO uint32
}

// DefaultCosts follows the IXP2850 programmer's reference: POP_COUNT
// finishes in 3 cycles; simple ALU ops are single-cycle.
var DefaultCosts = Costs{
	PopCount:     3,
	PopCountRISC: 120,
	ALU:          1,
	Branch:       1,
	IssueIO:      2,
}

// Step is one memory access within a program, preceded by Compute cycles of
// ME work.
type Step struct {
	// Compute is the ME cycles spent before issuing this access.
	Compute uint32
	// Channel is the SRAM channel the access targets.
	Channel uint8
	// Addr is the word address (kept for debugging and address-pattern
	// analysis; the simulator charges only channel and word count).
	Addr uint32
	// Words is the burst length of the access in 32-bit words.
	Words uint16
}

// Program is the complete access program of one packet: alternating compute
// and memory phases, a final compute tail, and the classification result
// the run produced (used to cross-check simulated runs against native ones).
type Program struct {
	Steps        []Step
	FinalCompute uint32
	Result       int
}

// Accesses returns the number of SRAM commands in the program.
func (p *Program) Accesses() int { return len(p.Steps) }

// Words returns the total number of SRAM words transferred.
func (p *Program) Words() int {
	n := 0
	for i := range p.Steps {
		n += int(p.Steps[i].Words)
	}
	return n
}

// ComputeCycles returns the total ME compute cycles in the program.
func (p *Program) ComputeCycles() uint64 {
	n := uint64(p.FinalCompute)
	for i := range p.Steps {
		n += uint64(p.Steps[i].Compute)
	}
	return n
}

// String summarizes the program.
func (p *Program) String() string {
	return fmt.Sprintf("program{%d accesses, %d words, %d compute cycles, result %d}",
		p.Accesses(), p.Words(), p.ComputeCycles(), p.Result)
}

// Reader is the minimal raw-read interface a Recorder wraps; the memlayout
// Image satisfies it.
type Reader interface {
	Read(ch uint8, addr uint32, words int) []uint32
}

// Recorder implements Mem by delegating reads to an underlying Reader while
// recording the access program.
type Recorder struct {
	mem     Reader
	pending uint32
	steps   []Step
}

// NewRecorder wraps mem for recording. The Recorder may be reused across
// packets via Finish, which resets it.
func NewRecorder(mem Reader) *Recorder {
	return &Recorder{mem: mem}
}

// Read records one SRAM command and returns the underlying words.
func (r *Recorder) Read(ch uint8, addr uint32, words int) []uint32 {
	r.steps = append(r.steps, Step{
		Compute: r.pending,
		Channel: ch,
		Addr:    addr,
		Words:   uint16(words),
	})
	r.pending = 0
	return r.mem.Read(ch, addr, words)
}

// Compute accumulates ME cycles to be attached to the next access (or to
// the program tail).
func (r *Recorder) Compute(cycles uint32) {
	r.pending += cycles
}

// Finish seals the program with the classification result and resets the
// recorder for the next packet.
func (r *Recorder) Finish(result int) Program {
	p := Program{Steps: r.steps, FinalCompute: r.pending, Result: result}
	r.steps = nil
	r.pending = 0
	return p
}

// NullMem implements Mem with zero-cost compute over a Reader; used for
// functional verification of serialized lookups without recording overhead.
type NullMem struct {
	R Reader
}

// Read delegates to the underlying reader.
func (n NullMem) Read(ch uint8, addr uint32, words int) []uint32 {
	return n.R.Read(ch, addr, words)
}

// Compute discards the cycle count.
func (NullMem) Compute(uint32) {}
