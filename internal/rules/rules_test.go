package rules

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyBitsLayout(t *testing.T) {
	h := Header{
		SrcIP:   0xAABBCCDD,
		DstIP:   0x11223344,
		SrcPort: 0x5566,
		DstPort: 0x7788,
		Proto:   0x9A,
	}
	k := h.Key()
	cases := []struct {
		start, width uint
		want         uint32
	}{
		{0, 32, 0xAABBCCDD},  // whole srcIP
		{32, 32, 0x11223344}, // whole dstIP
		{64, 16, 0x5566},     // srcPort
		{80, 16, 0x7788},     // dstPort
		{96, 8, 0x9A},        // proto
		{0, 8, 0xAA},         // first srcIP byte
		{24, 8, 0xDD},        // last srcIP byte
		{28, 8, 0xD1},        // straddles srcIP/dstIP: low nibble D, high nibble 1
		{60, 8, 0x45},        // straddles hi/lo words: dstIP low nibble 4, srcPort top nibble 5
		{62, 4, 0x1},         // 2 bits of dstIP (00) + 2 bits of srcPort (01)
		{96, 4, 0x9},         // proto high nibble
		{100, 4, 0xA},        // proto low nibble
		{0, 1, 1},            // top bit of 0xAA...
		{103, 1, 0},          // last key bit (proto LSB of 0x9A)
	}
	for _, c := range cases {
		if got := k.Bits(c.start, c.width); got != c.want {
			t.Errorf("Bits(%d, %d) = %#x, want %#x", c.start, c.width, got, c.want)
		}
	}
}

func TestKeyBitsReconstructsHeader(t *testing.T) {
	// Extracting each dimension's bit slice must reproduce Field values,
	// for every stride that divides the layout.
	f := func(src, dst uint32, sp, dp uint16, pr uint8) bool {
		h := Header{src, dst, sp, dp, pr}
		k := h.Key()
		for d := 0; d < NumDims; d++ {
			if k.Bits(DimOffset[d], DimBits[d]) != h.Field(Dim(d)) {
				return false
			}
		}
		// Walking the key in stride-8 chunks and reassembling per field
		// must also agree (this is exactly what ExpCuts does).
		var fields [NumDims]uint32
		for pos := uint(0); pos < KeyBits; pos += 8 {
			chunk := k.Bits(pos, 8)
			for d := 0; d < NumDims; d++ {
				if pos >= DimOffset[d] && pos < DimOffset[d]+DimBits[d] {
					fields[d] = fields[d]<<8 | chunk
				}
			}
		}
		for d := 0; d < NumDims; d++ {
			if fields[d] != h.Field(Dim(d)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range slice")
		}
	}()
	var k Key
	k.Bits(100, 8) // runs past bit 104
}

func TestPrefixSpan(t *testing.T) {
	cases := []struct {
		p    Prefix
		want Span
	}{
		{Prefix{0, 0}, Span{0, 0xFFFFFFFF}},
		{Prefix{0xC0A80000, 16}, Span{0xC0A80000, 0xC0A8FFFF}},
		{Prefix{0xC0A80101, 32}, Span{0xC0A80101, 0xC0A80101}},
		{Prefix{0xC0A801FF, 24}, Span{0xC0A80100, 0xC0A801FF}},
		// Host bits set in Addr must be masked off.
		{Prefix{0xC0A801FF, 16}, Span{0xC0A80000, 0xC0A8FFFF}},
	}
	for _, c := range cases {
		if got := c.p.Span(); got != c.want {
			t.Errorf("%v.Span() = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSpanOperations(t *testing.T) {
	a := Span{10, 20}
	b := Span{15, 30}
	c := Span{21, 25}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	got, ok := a.Intersect(b)
	if !ok || got != (Span{15, 20}) {
		t.Errorf("a∩b = %v,%v want {15,20},true", got, ok)
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("a∩c should be empty")
	}
	if !b.Covers(Span{16, 29}) || b.Covers(Span{14, 29}) {
		t.Error("Covers is wrong")
	}
	if (Span{0, ^uint32(0)}).Size() != 1<<32 {
		t.Error("full span size should be 2^32")
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{
		SrcIP:   Prefix{0x0A000000, 8},  // 10.0.0.0/8
		DstIP:   Prefix{0xC0A80100, 24}, // 192.168.1.0/24
		SrcPort: FullPortRange,
		DstPort: PortRange{80, 80},
		Proto:   ProtoMatch{Value: ProtoTCP},
	}
	match := Header{0x0A010203, 0xC0A80142, 12345, 80, ProtoTCP}
	if !r.Matches(match) {
		t.Errorf("rule should match %v", match)
	}
	for _, h := range []Header{
		{0x0B010203, 0xC0A80142, 12345, 80, ProtoTCP}, // wrong src net
		{0x0A010203, 0xC0A80242, 12345, 80, ProtoTCP}, // wrong dst net
		{0x0A010203, 0xC0A80142, 12345, 81, ProtoTCP}, // wrong dst port
		{0x0A010203, 0xC0A80142, 12345, 80, ProtoUDP}, // wrong proto
	} {
		if r.Matches(h) {
			t.Errorf("rule should not match %v", h)
		}
	}
}

func TestRuleSetMatchPriority(t *testing.T) {
	// Two overlapping rules: the lower-indexed one must win where both match.
	rs := NewRuleSet("prio", []Rule{
		{SrcIP: Prefix{0x0A000000, 8}, SrcPort: FullPortRange, DstPort: PortRange{80, 80}, Proto: ProtoMatch{Value: ProtoTCP}, Action: ActionDeny},
		{SrcPort: FullPortRange, DstPort: FullPortRange, Proto: AnyProto, Action: ActionPermit},
	})
	h := Header{0x0A010203, 0, 1, 80, ProtoTCP}
	if got := rs.Match(h); got != 0 {
		t.Errorf("Match = %d, want 0 (priority order)", got)
	}
	h2 := Header{0x0B010203, 0, 1, 80, ProtoTCP}
	if got := rs.Match(h2); got != 1 {
		t.Errorf("Match = %d, want 1 (fallthrough)", got)
	}
}

func TestRuleSetMatchNoMatch(t *testing.T) {
	rs := NewRuleSet("one", []Rule{
		{SrcIP: Prefix{0x0A000000, 8}, SrcPort: FullPortRange, DstPort: FullPortRange, Proto: AnyProto},
	})
	if got := rs.Match(Header{0x0B000001, 0, 0, 0, 0}); got != -1 {
		t.Errorf("Match = %d, want -1", got)
	}
}

func TestBoxContainsAgreesWithMatches(t *testing.T) {
	// A rule's Box must contain exactly the headers the rule matches.
	rng := rand.New(rand.NewSource(7))
	f := func(src, dst uint32, sp, dp uint16, pr uint8) bool {
		r := Rule{
			SrcIP:   Prefix{rng.Uint32(), uint8(rng.Intn(33))},
			DstIP:   Prefix{rng.Uint32(), uint8(rng.Intn(33))},
			SrcPort: PortRange{0, uint16(rng.Intn(65536))},
			DstPort: PortRange{uint16(rng.Intn(1024)), 65535},
			Proto:   ProtoMatch{Wildcard: rng.Intn(2) == 0, Value: uint8(rng.Intn(256))},
		}
		h := Header{src, dst, sp, dp, pr}
		return r.Box().Contains(h) == r.Matches(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIPRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "10.1.2.3", "192.168.1.254"} {
		v, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if got := FormatIP(v); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	for _, s := range []string{"1.2.3", "256.1.1.1", "a.b.c.d", ""} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) should fail", s)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := NewRuleSet("empty", nil).Validate(); err == nil {
		t.Error("empty set should fail validation")
	}
	bad := NewRuleSet("bad", []Rule{{SrcPort: PortRange{10, 5}, DstPort: FullPortRange}})
	if err := bad.Validate(); err == nil {
		t.Error("inverted port range should fail validation")
	}
	ok := NewRuleSet("ok", []Rule{{SrcPort: FullPortRange, DstPort: FullPortRange, Proto: AnyProto}})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestDimString(t *testing.T) {
	want := []string{"srcIP", "dstIP", "srcPort", "dstPort", "proto"}
	for d := 0; d < NumDims; d++ {
		if Dim(d).String() != want[d] {
			t.Errorf("Dim(%d) = %q, want %q", d, Dim(d), want[d])
		}
	}
	if Dim(9).String() != "Dim(9)" {
		t.Errorf("out-of-range Dim renders %q", Dim(9))
	}
}
