package rules

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the statistical structure of a rule set — the properties
// (wildcard density, prefix-length distribution, overlap) that drive
// decision-tree size and space-mapping table size. The synthetic generators
// are tuned against these numbers, and tests assert that FW-style and
// CR-style sets keep their characteristic shapes.
type Stats struct {
	Name  string
	Rules int
	// WildcardFrac is, per dimension, the fraction of rules that are a
	// full wildcard in that dimension.
	WildcardFrac [NumDims]float64
	// DistinctSpans is, per dimension, the number of distinct projected
	// spans among the rules.
	DistinctSpans [NumDims]int
	// PrefixLenHist counts source (index 0) and destination (index 1)
	// prefix lengths 0..32.
	PrefixLenHist [2][33]int
	// OverlapPairs counts rule pairs whose boxes intersect; a measure of
	// how tangled the set is (overlaps force decision trees to replicate
	// rules across children).
	OverlapPairs int
	// AvgOverlapDegree is OverlapPairs normalized by the number of rules.
	AvgOverlapDegree float64
}

// ComputeStats analyzes the rule set. It is O(n²) in the number of rules for
// the overlap count, which is fine at the paper's scale (≤ 1945 rules).
func ComputeStats(s *RuleSet) Stats {
	st := Stats{Name: s.Name, Rules: len(s.Rules)}
	for d := 0; d < NumDims; d++ {
		seen := make(map[Span]bool)
		wild := 0
		for i := range s.Rules {
			sp := s.Rules[i].Span(Dim(d))
			seen[sp] = true
			if sp.Lo == 0 && sp.Hi == Dim(d).Max() {
				wild++
			}
		}
		st.DistinctSpans[d] = len(seen)
		if len(s.Rules) > 0 {
			st.WildcardFrac[d] = float64(wild) / float64(len(s.Rules))
		}
	}
	for i := range s.Rules {
		st.PrefixLenHist[0][s.Rules[i].SrcIP.Len]++
		st.PrefixLenHist[1][s.Rules[i].DstIP.Len]++
	}
	boxes := make([]Box, len(s.Rules))
	for i := range s.Rules {
		boxes[i] = s.Rules[i].Box()
	}
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Overlaps(boxes[j]) {
				st.OverlapPairs++
			}
		}
	}
	if len(s.Rules) > 0 {
		st.AvgOverlapDegree = float64(st.OverlapPairs) / float64(len(s.Rules))
	}
	return st
}

// String renders a compact multi-line report of the statistics.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d rules, %d overlapping pairs (%.1f per rule)\n",
		st.Name, st.Rules, st.OverlapPairs, st.AvgOverlapDegree)
	for d := 0; d < NumDims; d++ {
		fmt.Fprintf(&b, "  %-8s wildcard %5.1f%%  distinct spans %d\n",
			Dim(d), st.WildcardFrac[d]*100, st.DistinctSpans[d])
	}
	return b.String()
}

// ProjectedSegments computes the non-overlapping segments induced by the
// rules' projections onto dimension d: the unique span endpoints split the
// domain into maximal intervals inside which the set of matching rules is
// constant. This is the phase-0 building block of field-independent schemes
// (HSM, RFC) and is also used to size their tables.
//
// The returned segments are sorted, contiguous and cover the full domain.
func ProjectedSegments(s *RuleSet, d Dim) []Span {
	// Collect the set of segment start points: 0, every span Lo, and every
	// span Hi+1 (if it does not overflow the domain).
	max := Dim(d).Max()
	startSet := map[uint32]bool{0: true}
	for i := range s.Rules {
		sp := s.Rules[i].Span(Dim(d))
		startSet[sp.Lo] = true
		if sp.Hi < max {
			startSet[sp.Hi+1] = true
		}
	}
	starts := make([]uint32, 0, len(startSet))
	for v := range startSet {
		starts = append(starts, v)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	segs := make([]Span, len(starts))
	for i, lo := range starts {
		hi := max
		if i+1 < len(starts) {
			hi = starts[i+1] - 1
		}
		segs[i] = Span{lo, hi}
	}
	return segs
}
