// Package rules defines the 5-tuple packet classification rule model shared
// by every classifier in this repository: packet headers, rules expressed as
// per-field ranges, rule sets with priority ordering, and the 104-bit packed
// header key that the ExpCuts decision tree cuts bit-by-bit.
//
// The five classification dimensions follow the paper: 32-bit source and
// destination IPv4 addresses (matched by prefix), 16-bit source and
// destination transport ports (matched by arbitrary range), and the 8-bit
// transport protocol (matched exactly or wildcarded). Priorities are implied
// by rule-set order: the rule at index 0 has the highest priority, matching
// common ACL "first match wins" semantics.
package rules

import (
	"fmt"
	"strings"
)

// Dim identifies one of the five classification dimensions.
type Dim int

// The five classification dimensions, in the fixed order used to build the
// 104-bit concatenated header key.
const (
	DimSrcIP Dim = iota
	DimDstIP
	DimSrcPort
	DimDstPort
	DimProto

	// NumDims is the number of classification dimensions.
	NumDims = 5
)

// KeyBits is the total width of the concatenated 5-tuple key in bits:
// 32 + 32 + 16 + 16 + 8.
const KeyBits = 104

// DimBits gives the bit width of each dimension, indexed by Dim.
var DimBits = [NumDims]uint{32, 32, 16, 16, 8}

// DimOffset gives the starting bit position of each dimension within the
// 104-bit key, indexed by Dim. Bit 0 is the most significant bit of the
// source IP address.
var DimOffset = [NumDims]uint{0, 32, 64, 80, 96}

// dimNames holds the display names of the dimensions.
var dimNames = [NumDims]string{"srcIP", "dstIP", "srcPort", "dstPort", "proto"}

// String returns the conventional short name of the dimension.
func (d Dim) String() string {
	if d < 0 || int(d) >= NumDims {
		return fmt.Sprintf("Dim(%d)", int(d))
	}
	return dimNames[d]
}

// Max returns the largest value representable in dimension d
// (e.g. 2^32-1 for an IP dimension).
func (d Dim) Max() uint32 {
	return maxOfBits(DimBits[d])
}

func maxOfBits(bits uint) uint32 {
	if bits >= 32 {
		return ^uint32(0)
	}
	return (uint32(1) << bits) - 1
}

// Header is a decoded 5-tuple packet header, the unit of classification.
type Header struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Field returns the value of dimension d widened to uint32.
func (h Header) Field(d Dim) uint32 {
	switch d {
	case DimSrcIP:
		return h.SrcIP
	case DimDstIP:
		return h.DstIP
	case DimSrcPort:
		return uint32(h.SrcPort)
	case DimDstPort:
		return uint32(h.DstPort)
	case DimProto:
		return uint32(h.Proto)
	}
	panic(fmt.Sprintf("rules: invalid dimension %d", int(d)))
}

// Key packs the header into its 104-bit key representation.
func (h Header) Key() Key {
	var k Key
	k.hi = uint64(h.SrcIP)<<32 | uint64(h.DstIP)
	k.lo = uint64(h.SrcPort)<<48 | uint64(h.DstPort)<<32 | uint64(h.Proto)<<24
	return k
}

// String renders the header in dotted-quad 5-tuple form.
func (h Header) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d proto %d",
		FormatIP(h.SrcIP), h.SrcPort, FormatIP(h.DstIP), h.DstPort, h.Proto)
}

// Key is the 104-bit concatenated header key. Bit 0 (most significant) is
// the top bit of the source IP; the low 24 bits of lo are unused padding.
// The layout matches the explicit cutting order of the ExpCuts tree:
// srcIP(32) ‖ dstIP(32) ‖ srcPort(16) ‖ dstPort(16) ‖ proto(8).
type Key struct {
	hi uint64 // key bits 0..63   (srcIP, dstIP)
	lo uint64 // key bits 64..103 in the top 40 bits (srcPort, dstPort, proto)
}

// Bits extracts width bits starting at bit position start (0 = most
// significant bit of the key). The extracted bits are returned right-aligned.
// It panics if the requested slice runs outside the 104-bit key or if width
// is 0 or greater than 32.
func (k Key) Bits(start, width uint) uint32 {
	if width == 0 || width > 32 || start+width > KeyBits {
		panic(fmt.Sprintf("rules: invalid key slice start=%d width=%d", start, width))
	}
	end := start + width // exclusive
	switch {
	case end <= 64:
		return uint32(k.hi >> (64 - end) & uint64(maxOfBits(width)))
	case start >= 64:
		return uint32(k.lo >> (128 - end) & uint64(maxOfBits(width)))
	default:
		// Straddles the hi/lo boundary.
		hiPart := uint(64 - start) // bits taken from hi
		loPart := width - hiPart   // bits taken from lo
		hv := uint32(k.hi) & maxOfBits(hiPart)
		lv := uint32(k.lo >> (64 - loPart))
		return hv<<loPart | lv
	}
}

// Words exposes the key's two raw 64-bit words (hi = key bits 0..63,
// lo = key bits 64..103 left-aligned). Hot batch walks use this to hoist
// the per-level Bits bounds checks out of their inner loops: for any
// stride w dividing 64 a w-bit chunk never straddles the word boundary,
// so a caller can extract chunks with one shift and mask per level.
func (k Key) Words() (hi, lo uint64) { return k.hi, k.lo }

// Span is a closed interval [Lo, Hi] of field values. All rule fields are
// represented as spans: a /24 prefix is the span of its 256 addresses, an
// exact port is a single-point span, and a wildcard spans the full domain.
type Span struct {
	Lo, Hi uint32
}

// FullSpan returns the span covering the entire domain of dimension d.
func FullSpan(d Dim) Span {
	return Span{0, d.Max()}
}

// PointSpan returns the single-value span {v, v}.
func PointSpan(v uint32) Span {
	return Span{v, v}
}

// Contains reports whether v lies within the span.
func (s Span) Contains(v uint32) bool {
	return s.Lo <= v && v <= s.Hi
}

// Covers reports whether s fully contains t.
func (s Span) Covers(t Span) bool {
	return s.Lo <= t.Lo && t.Hi <= s.Hi
}

// Overlaps reports whether s and t share at least one value.
func (s Span) Overlaps(t Span) bool {
	return s.Lo <= t.Hi && t.Lo <= s.Hi
}

// Intersect returns the intersection of s and t and whether it is non-empty.
func (s Span) Intersect(t Span) (Span, bool) {
	lo, hi := s.Lo, s.Hi
	if t.Lo > lo {
		lo = t.Lo
	}
	if t.Hi < hi {
		hi = t.Hi
	}
	if lo > hi {
		return Span{}, false
	}
	return Span{lo, hi}, true
}

// Size returns the number of values in the span as a uint64 (a full 32-bit
// span holds 2^32 values, which does not fit in uint32).
func (s Span) Size() uint64 {
	return uint64(s.Hi) - uint64(s.Lo) + 1
}

// IsPoint reports whether the span holds exactly one value.
func (s Span) IsPoint() bool {
	return s.Lo == s.Hi
}

// String renders the span as "lo-hi" or a single value.
func (s Span) String() string {
	if s.IsPoint() {
		return fmt.Sprintf("%d", s.Lo)
	}
	return fmt.Sprintf("%d-%d", s.Lo, s.Hi)
}

// Box is an axis-aligned 5-dimensional region of the classification space:
// one span per dimension. Decision-tree nodes cover boxes.
type Box [NumDims]Span

// FullBox returns the box covering the entire 5-dimensional space.
func FullBox() Box {
	var b Box
	for d := 0; d < NumDims; d++ {
		b[d] = FullSpan(Dim(d))
	}
	return b
}

// Contains reports whether the header's field values all lie inside the box.
func (b Box) Contains(h Header) bool {
	for d := 0; d < NumDims; d++ {
		if !b[d].Contains(h.Field(Dim(d))) {
			return false
		}
	}
	return true
}

// Covers reports whether b fully contains c in every dimension.
func (b Box) Covers(c Box) bool {
	for d := 0; d < NumDims; d++ {
		if !b[d].Covers(c[d]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether b and c intersect in every dimension.
func (b Box) Overlaps(c Box) bool {
	for d := 0; d < NumDims; d++ {
		if !b[d].Overlaps(c[d]) {
			return false
		}
	}
	return true
}

// String renders the box as a 5-tuple of spans.
func (b Box) String() string {
	parts := make([]string, NumDims)
	for d := 0; d < NumDims; d++ {
		parts[d] = fmt.Sprintf("%s=%s", Dim(d), b[d])
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Action is the disposition attached to a rule. The numeric values are what
// the serialized SRAM images store alongside the matched rule index.
type Action uint8

// Rule actions. Classifiers return the matched rule; applications interpret
// the action (the firewall example denies, the router example maps actions
// to QoS classes).
const (
	ActionPermit Action = iota
	ActionDeny
	ActionClass0
	ActionClass1
	ActionClass2
	ActionClass3
)

var actionNames = map[Action]string{
	ActionPermit: "permit",
	ActionDeny:   "deny",
	ActionClass0: "class0",
	ActionClass1: "class1",
	ActionClass2: "class2",
	ActionClass3: "class3",
}

// String returns the lowercase action keyword used by the textual rule format.
func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// ParseAction converts an action keyword back to its Action value.
func ParseAction(s string) (Action, error) {
	for a, name := range actionNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("rules: unknown action %q", s)
}

// Rule is one classification rule: a 5-dimensional box plus an action.
// Rules do not carry an explicit priority; a rule's index inside its RuleSet
// is its priority (index 0 is highest), mirroring ACL order.
type Rule struct {
	// SrcIP and DstIP are prefix matches. A prefix of length L is the span
	// of all addresses sharing the top L bits.
	SrcIP, DstIP Prefix
	// SrcPort and DstPort are arbitrary inclusive port ranges.
	SrcPort, DstPort PortRange
	// Proto matches the transport protocol: exact value or wildcard.
	Proto ProtoMatch
	// Action is the rule's disposition.
	Action Action
}

// Prefix is an IPv4 prefix match: the top Len bits of Addr are significant.
// Len 0 is a wildcard; Len 32 is an exact host match.
type Prefix struct {
	Addr uint32
	Len  uint8
}

// Span returns the address range covered by the prefix.
func (p Prefix) Span() Span {
	if p.Len == 0 {
		return Span{0, ^uint32(0)}
	}
	mask := ^uint32(0) << (32 - uint(p.Len))
	base := p.Addr & mask
	return Span{base, base | ^mask}
}

// Matches reports whether addr falls under the prefix.
func (p Prefix) Matches(addr uint32) bool {
	return p.Span().Contains(addr)
}

// IsWildcard reports whether the prefix matches every address.
func (p Prefix) IsWildcard() bool {
	return p.Len == 0
}

// String renders the prefix in addr/len notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", FormatIP(p.Addr&maskOfLen(p.Len)), p.Len)
}

func maskOfLen(l uint8) uint32 {
	if l == 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(l))
}

// PortRange is an inclusive range of 16-bit transport port numbers.
type PortRange struct {
	Lo, Hi uint16
}

// FullPortRange matches every port.
var FullPortRange = PortRange{0, 0xFFFF}

// Span widens the port range to a Span.
func (r PortRange) Span() Span {
	return Span{uint32(r.Lo), uint32(r.Hi)}
}

// Matches reports whether the port lies in the range.
func (r PortRange) Matches(p uint16) bool {
	return r.Lo <= p && p <= r.Hi
}

// IsWildcard reports whether the range covers all 65536 ports.
func (r PortRange) IsWildcard() bool {
	return r.Lo == 0 && r.Hi == 0xFFFF
}

// String renders the range as "lo : hi" in the ClassBench style.
func (r PortRange) String() string {
	return fmt.Sprintf("%d : %d", r.Lo, r.Hi)
}

// ProtoMatch matches the 8-bit protocol field: either any value (Wildcard)
// or exactly Value.
type ProtoMatch struct {
	Wildcard bool
	Value    uint8
}

// Common IP protocol numbers used by the generators and examples.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// AnyProto matches every protocol value.
var AnyProto = ProtoMatch{Wildcard: true}

// Span widens the protocol match to a Span.
func (m ProtoMatch) Span() Span {
	if m.Wildcard {
		return Span{0, 0xFF}
	}
	return PointSpan(uint32(m.Value))
}

// Matches reports whether the protocol value matches.
func (m ProtoMatch) Matches(p uint8) bool {
	return m.Wildcard || m.Value == p
}

// String renders the match in ClassBench value/mask notation.
func (m ProtoMatch) String() string {
	if m.Wildcard {
		return "0x00/0x00"
	}
	return fmt.Sprintf("0x%02X/0xFF", m.Value)
}

// Span returns the value range of the rule in dimension d.
func (r *Rule) Span(d Dim) Span {
	switch d {
	case DimSrcIP:
		return r.SrcIP.Span()
	case DimDstIP:
		return r.DstIP.Span()
	case DimSrcPort:
		return r.SrcPort.Span()
	case DimDstPort:
		return r.DstPort.Span()
	case DimProto:
		return r.Proto.Span()
	}
	panic(fmt.Sprintf("rules: invalid dimension %d", int(d)))
}

// Box returns the rule's full 5-dimensional box.
func (r *Rule) Box() Box {
	var b Box
	for d := 0; d < NumDims; d++ {
		b[d] = r.Span(Dim(d))
	}
	return b
}

// Matches reports whether the header satisfies all five fields of the rule.
func (r *Rule) Matches(h Header) bool {
	return r.SrcIP.Matches(h.SrcIP) &&
		r.DstIP.Matches(h.DstIP) &&
		r.SrcPort.Matches(h.SrcPort) &&
		r.DstPort.Matches(h.DstPort) &&
		r.Proto.Matches(h.Proto)
}

// IsWildcardDim reports whether the rule is a wildcard in dimension d.
func (r *Rule) IsWildcardDim(d Dim) bool {
	s := r.Span(d)
	return s.Lo == 0 && s.Hi == Dim(d).Max()
}

// String renders the rule in the textual rule format (see Parse).
func (r *Rule) String() string {
	return fmt.Sprintf("@%s\t%s\t%s\t%s\t%s\t%s",
		r.SrcIP, r.DstIP, r.SrcPort, r.DstPort, r.Proto, r.Action)
}

// RuleSet is an ordered set of rules. Index order is priority order: the
// lowest-indexed matching rule wins.
type RuleSet struct {
	// Name labels the set in reports (e.g. "CR04").
	Name string
	// Rules holds the rules in priority order.
	Rules []Rule
}

// NewRuleSet builds a named rule set from rules already in priority order.
func NewRuleSet(name string, rs []Rule) *RuleSet {
	return &RuleSet{Name: name, Rules: rs}
}

// Len returns the number of rules.
func (s *RuleSet) Len() int {
	return len(s.Rules)
}

// Match performs reference first-match classification by scanning rules in
// priority order. It returns the matched rule index, or -1 if none match.
// Every classifier in this repository must agree with Match on every header.
func (s *RuleSet) Match(h Header) int {
	for i := range s.Rules {
		if s.Rules[i].Matches(h) {
			return i
		}
	}
	return -1
}

// Validate checks structural invariants: prefix lengths within 0..32,
// non-inverted port ranges, and a non-empty set.
func (s *RuleSet) Validate() error {
	if len(s.Rules) == 0 {
		return fmt.Errorf("rules: rule set %q is empty", s.Name)
	}
	for i := range s.Rules {
		r := &s.Rules[i]
		if r.SrcIP.Len > 32 || r.DstIP.Len > 32 {
			return fmt.Errorf("rules: rule %d: prefix length out of range", i)
		}
		if r.SrcPort.Lo > r.SrcPort.Hi {
			return fmt.Errorf("rules: rule %d: inverted source port range", i)
		}
		if r.DstPort.Lo > r.DstPort.Hi {
			return fmt.Errorf("rules: rule %d: inverted destination port range", i)
		}
	}
	return nil
}

// FormatIP renders a 32-bit address in dotted-quad notation.
func FormatIP(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (uint32, error) {
	var b [4]int
	n, err := fmt.Sscanf(s, "%d.%d.%d.%d", &b[0], &b[1], &b[2], &b[3])
	if err != nil || n != 4 {
		return 0, fmt.Errorf("rules: invalid IPv4 address %q", s)
	}
	var v uint32
	for _, x := range b {
		if x < 0 || x > 255 {
			return 0, fmt.Errorf("rules: invalid IPv4 octet in %q", s)
		}
		v = v<<8 | uint32(x)
	}
	return v, nil
}
