package rules

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a rule set in the ClassBench-style textual format, one rule
// per line:
//
//	@srcIP/len  dstIP/len  loPort : hiPort  loPort : hiPort  0xPP/0xMM  [action]
//
// Fields are separated by whitespace (tabs in files we write). The protocol
// mask must be 0x00 (wildcard) or 0xFF (exact). The trailing action keyword
// is optional and defaults to permit. Blank lines and lines starting with
// '#' are ignored. Rule priority is line order.
func Parse(name string, r io.Reader) (*RuleSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var rs []Rule
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", lineNo, err)
		}
		rs = append(rs, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rules: reading %q: %w", name, err)
	}
	set := NewRuleSet(name, rs)
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// ParseRule parses a single rule line (see Parse for the format).
func ParseRule(line string) (Rule, error) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "@") {
		return Rule{}, fmt.Errorf("rule must start with '@': %q", line)
	}
	fields := strings.Fields(line[1:])
	// Expected layout: src dst sportLo : sportHi dportLo : dportHi proto [action]
	if len(fields) < 9 {
		return Rule{}, fmt.Errorf("rule has %d fields, want at least 9: %q", len(fields), line)
	}
	var r Rule
	var err error
	if r.SrcIP, err = ParsePrefix(fields[0]); err != nil {
		return Rule{}, err
	}
	if r.DstIP, err = ParsePrefix(fields[1]); err != nil {
		return Rule{}, err
	}
	if r.SrcPort, err = parsePortRange(fields[2], fields[3], fields[4]); err != nil {
		return Rule{}, fmt.Errorf("source port: %w", err)
	}
	if r.DstPort, err = parsePortRange(fields[5], fields[6], fields[7]); err != nil {
		return Rule{}, fmt.Errorf("destination port: %w", err)
	}
	if r.Proto, err = parseProtoMatch(fields[8]); err != nil {
		return Rule{}, err
	}
	r.Action = ActionPermit
	if len(fields) >= 10 {
		if r.Action, err = ParseAction(fields[9]); err != nil {
			return Rule{}, err
		}
	}
	return r, nil
}

// ParsePrefix parses "a.b.c.d/len" prefix notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("rules: prefix %q missing '/'", s)
	}
	addr, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	l, err := strconv.Atoi(s[slash+1:])
	if err != nil || l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("rules: invalid prefix length in %q", s)
	}
	return Prefix{Addr: addr, Len: uint8(l)}, nil
}

func parsePortRange(lo, colon, hi string) (PortRange, error) {
	if colon != ":" {
		return PortRange{}, fmt.Errorf("expected ':' between bounds, got %q", colon)
	}
	l, err := strconv.ParseUint(lo, 10, 16)
	if err != nil {
		return PortRange{}, fmt.Errorf("invalid low bound %q", lo)
	}
	h, err := strconv.ParseUint(hi, 10, 16)
	if err != nil {
		return PortRange{}, fmt.Errorf("invalid high bound %q", hi)
	}
	if l > h {
		return PortRange{}, fmt.Errorf("inverted range %s:%s", lo, hi)
	}
	return PortRange{Lo: uint16(l), Hi: uint16(h)}, nil
}

func parseProtoMatch(s string) (ProtoMatch, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return ProtoMatch{}, fmt.Errorf("rules: protocol %q missing '/'", s)
	}
	val, err := strconv.ParseUint(strings.TrimPrefix(s[:slash], "0x"), 16, 8)
	if err != nil {
		return ProtoMatch{}, fmt.Errorf("rules: invalid protocol value in %q", s)
	}
	mask, err := strconv.ParseUint(strings.TrimPrefix(s[slash+1:], "0x"), 16, 8)
	if err != nil {
		return ProtoMatch{}, fmt.Errorf("rules: invalid protocol mask in %q", s)
	}
	switch mask {
	case 0x00:
		return AnyProto, nil
	case 0xFF:
		return ProtoMatch{Value: uint8(val)}, nil
	default:
		return ProtoMatch{}, fmt.Errorf("rules: unsupported protocol mask 0x%02X (want 0x00 or 0xFF)", mask)
	}
}

// Write renders the rule set in the format accepted by Parse, one rule per
// line, preceded by a comment header naming the set.
func (s *RuleSet) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# rule set %s (%d rules)\n", s.Name, len(s.Rules)); err != nil {
		return err
	}
	for i := range s.Rules {
		if _, err := fmt.Fprintln(bw, s.Rules[i].String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
