package rules

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

const sampleRules = `# a comment
@10.0.0.0/8	192.168.1.0/24	0 : 65535	80 : 80	0x06/0xFF	deny

@0.0.0.0/0	0.0.0.0/0	0 : 65535	0 : 65535	0x00/0x00	permit
`

func TestParse(t *testing.T) {
	rs, err := Parse("sample", strings.NewReader(sampleRules))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 2 {
		t.Fatalf("parsed %d rules, want 2", rs.Len())
	}
	r0 := rs.Rules[0]
	if r0.SrcIP != (Prefix{0x0A000000, 8}) {
		t.Errorf("rule 0 srcIP = %v", r0.SrcIP)
	}
	if r0.DstIP != (Prefix{0xC0A80100, 24}) {
		t.Errorf("rule 0 dstIP = %v", r0.DstIP)
	}
	if r0.DstPort != (PortRange{80, 80}) {
		t.Errorf("rule 0 dstPort = %v", r0.DstPort)
	}
	if r0.Proto != (ProtoMatch{Value: 6}) {
		t.Errorf("rule 0 proto = %v", r0.Proto)
	}
	if r0.Action != ActionDeny {
		t.Errorf("rule 0 action = %v", r0.Action)
	}
	r1 := rs.Rules[1]
	if !r1.SrcIP.IsWildcard() || !r1.Proto.Wildcard || r1.Action != ActionPermit {
		t.Errorf("rule 1 parsed wrong: %+v", r1)
	}
}

func TestParseDefaultsToPermit(t *testing.T) {
	r, err := ParseRule("@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x11/0xFF")
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != ActionPermit {
		t.Errorf("action = %v, want permit", r.Action)
	}
	if r.Proto != (ProtoMatch{Value: ProtoUDP}) {
		t.Errorf("proto = %v", r.Proto)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"10.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0xFF",        // no '@'
		"@10.0.0.0/33 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0xFF",      // prefix len
		"@10.0.0.0/8 0.0.0.0/0 65535 : 0 0 : 65535 0x06/0xFF",       // inverted range
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0x0F",       // bad mask
		"@10.0.0.0/8 0.0.0.0/0 0 - 65535 0 : 65535 0x06/0xFF",       // bad separator
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535 0 : 65535 0x06/0xFF flood", // bad action
		"@10.0.0.0/8 0.0.0.0/0 0 : 65535 0x06/0xFF",                 // too few fields
	}
	for _, line := range bad {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("ParseRule(%q) should fail", line)
		}
	}
}

func TestParseErrorsIncludeLineNumber(t *testing.T) {
	_, err := Parse("x", strings.NewReader("@0.0.0.0/0 0.0.0.0/0 0 : 65535 0 : 65535 0x00/0x00\nnot-a-rule\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name line 2, got %v", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rulesIn := make([]Rule, 50)
	for i := range rulesIn {
		lo := uint16(rng.Intn(60000))
		rulesIn[i] = Rule{
			SrcIP:   Prefix{rng.Uint32(), uint8(rng.Intn(33))},
			DstIP:   Prefix{rng.Uint32(), uint8(rng.Intn(33))},
			SrcPort: PortRange{lo, lo + uint16(rng.Intn(5000))},
			DstPort: FullPortRange,
			Proto:   ProtoMatch{Wildcard: rng.Intn(2) == 0, Value: uint8(rng.Intn(256))},
			Action:  Action(rng.Intn(6)),
		}
		// Normalize: a prefix's host bits are not significant; Parse
		// returns the masked form, so mask here for exact equality.
		rulesIn[i].SrcIP.Addr &= maskOfLen(rulesIn[i].SrcIP.Len)
		rulesIn[i].DstIP.Addr &= maskOfLen(rulesIn[i].DstIP.Len)
		// A wildcard proto's value is not significant either.
		if rulesIn[i].Proto.Wildcard {
			rulesIn[i].Proto.Value = 0
		}
	}
	in := NewRuleSet("rt", rulesIn)
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Parse("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Rules, out.Rules) {
		for i := range in.Rules {
			if in.Rules[i] != out.Rules[i] {
				t.Fatalf("rule %d differs:\n in: %+v\nout: %+v", i, in.Rules[i], out.Rules[i])
			}
		}
		t.Fatal("rule sets differ")
	}
}

func TestProjectedSegments(t *testing.T) {
	rs := NewRuleSet("segs", []Rule{
		{SrcPort: PortRange{10, 20}, DstPort: FullPortRange, Proto: AnyProto},
		{SrcPort: PortRange{15, 30}, DstPort: FullPortRange, Proto: AnyProto},
		{SrcPort: FullPortRange, DstPort: FullPortRange, Proto: AnyProto},
	})
	segs := ProjectedSegments(rs, DimSrcPort)
	want := []Span{{0, 9}, {10, 14}, {15, 20}, {21, 30}, {31, 65535}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
	// Invariants: contiguous cover of the whole domain.
	checkSegmentsCover(t, segs, DimSrcPort.Max())
}

func TestProjectedSegmentsFullDomainEdge(t *testing.T) {
	// A span ending at the domain max must not generate an overflowed
	// boundary.
	rs := NewRuleSet("edge", []Rule{
		{SrcPort: PortRange{65530, 65535}, DstPort: FullPortRange, Proto: AnyProto},
	})
	segs := ProjectedSegments(rs, DimSrcPort)
	want := []Span{{0, 65529}, {65530, 65535}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments = %v, want %v", segs, want)
	}
	// Same at the 32-bit IP boundary.
	rs2 := NewRuleSet("edge2", []Rule{
		{SrcIP: Prefix{0xFFFFFF00, 24}, SrcPort: FullPortRange, DstPort: FullPortRange, Proto: AnyProto},
	})
	segs2 := ProjectedSegments(rs2, DimSrcIP)
	checkSegmentsCover(t, segs2, DimSrcIP.Max())
}

func checkSegmentsCover(t *testing.T, segs []Span, max uint32) {
	t.Helper()
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	if segs[0].Lo != 0 {
		t.Errorf("first segment starts at %d, want 0", segs[0].Lo)
	}
	if segs[len(segs)-1].Hi != max {
		t.Errorf("last segment ends at %d, want %d", segs[len(segs)-1].Hi, max)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Lo != segs[i-1].Hi+1 {
			t.Errorf("gap between segment %d (%v) and %d (%v)", i-1, segs[i-1], i, segs[i])
		}
	}
}

func TestComputeStats(t *testing.T) {
	rs := NewRuleSet("st", []Rule{
		{SrcIP: Prefix{0x0A000000, 8}, SrcPort: FullPortRange, DstPort: PortRange{80, 80}, Proto: ProtoMatch{Value: ProtoTCP}},
		{SrcIP: Prefix{0x0A000000, 8}, SrcPort: FullPortRange, DstPort: PortRange{443, 443}, Proto: ProtoMatch{Value: ProtoTCP}},
		{SrcPort: FullPortRange, DstPort: FullPortRange, Proto: AnyProto},
	})
	st := ComputeStats(rs)
	if st.Rules != 3 {
		t.Errorf("Rules = %d", st.Rules)
	}
	// srcIP: two distinct spans (10/8 and wildcard); one of three wildcard.
	if st.DistinctSpans[DimSrcIP] != 2 {
		t.Errorf("srcIP distinct = %d, want 2", st.DistinctSpans[DimSrcIP])
	}
	if got := st.WildcardFrac[DimSrcIP]; got < 0.33 || got > 0.34 {
		t.Errorf("srcIP wildcard frac = %v", got)
	}
	// Rule 2 (full wildcard) overlaps rules 0 and 1; rules 0 and 1 overlap
	// everywhere except dst port, so they do NOT overlap. Total pairs = 2.
	if st.OverlapPairs != 2 {
		t.Errorf("OverlapPairs = %d, want 2", st.OverlapPairs)
	}
	if st.PrefixLenHist[0][8] != 2 || st.PrefixLenHist[0][0] != 1 {
		t.Errorf("prefix histogram wrong: %v", st.PrefixLenHist[0])
	}
	if !strings.Contains(st.String(), "3 rules") {
		t.Errorf("String() = %q", st.String())
	}
}
