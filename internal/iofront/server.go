// Package iofront is the live-traffic front end: a UDP classification
// server and the load generator that drives it, the commodity-socket
// translation of the paper's receive-microengine / classification-
// microengine split (and NuevoMatch's classifier-server / load-generator
// pair). The server assembles datagrams into segment buffers, decodes
// them through internal/wire, streams the headers into the sharded
// engine via engine.RunStream, and echoes one verdict per request; the
// load generator paces rule-directed traffic at a target rate and folds
// every reply into a round-trip latency histogram.
package iofront

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/pcapio"
	"repro/internal/rules"
	"repro/internal/wire"
)

// ServerConfig configures Serve.
type ServerConfig struct {
	// Engine is passed through to engine.RunStream. PreserveOrder is
	// forced on: reply correlation relies on results emerging in arrival
	// order (see replyMeta).
	Engine engine.Config
	// FlushInterval bounds how long an under-filled batch may wait for
	// more traffic before being handed to the engine — the tail-latency
	// knob. 0 means DefaultFlushInterval.
	FlushInterval time.Duration
	// Echo controls whether verdicts are sent back to the requester.
	// Decode-error replies are sent regardless — a malformed request is
	// a protocol conversation, not traffic.
	Echo bool
}

// DefaultFlushInterval keeps tail latency bounded at light load without
// spinning the receive loop.
const DefaultFlushInterval = 500 * time.Microsecond

// ServeReport is the server's accounting after a Serve returns. Every
// received datagram is accounted exactly once, and Check verifies it.
type ServeReport struct {
	// Received counts request datagrams read off the socket.
	Received int
	// DecodeErrors counts requests whose frame the wire decoder
	// rejected; each was answered VerdictDecodeError and never reached
	// the engine.
	DecodeErrors int
	// Offered counts headers handed to the engine: Received − DecodeErrors.
	Offered int
	// Classified, Shed, Canceled, Panics split Offered by outcome.
	Classified, Shed, Canceled, Panics int
	// Replies counts reply datagrams written (0 with Echo off except
	// decode-error replies).
	Replies int

	// Stats is the underlying engine accounting.
	Stats engine.Stats
}

// Check verifies the conservation identities: no datagram is ever
// silently dropped between the socket and the verdict.
func (r ServeReport) Check() error {
	if r.DecodeErrors+r.Offered != r.Received {
		return fmt.Errorf("iofront: %d decode errors + %d offered != %d received",
			r.DecodeErrors, r.Offered, r.Received)
	}
	if r.Classified+r.Shed+r.Canceled+r.Panics != r.Offered {
		return fmt.Errorf("iofront: %d classified + %d shed + %d canceled + %d panicked != %d offered",
			r.Classified, r.Shed, r.Canceled, r.Panics, r.Offered)
	}
	return nil
}

// replyMeta is the per-packet reply routing the engine never sees: the
// request token and where to send the verdict. The dispatcher pushes one
// per header it feeds the engine; the emitter pops one per result. With
// PreserveOrder forced on, results emerge in exactly the order headers
// were pulled, so a FIFO queue is a correct correlator — no map, no
// per-packet allocation.
type replyMeta struct {
	token uint64
	addr  netip.AddrPort
}

// udpSource adapts a UDP socket to engine.Source: each pull assembles
// datagrams into a segment arena under a read deadline, decodes them,
// answers malformed ones immediately, and queues reply metadata for the
// rest. A deadline expiry returns a short fill, which tells the engine
// to flush half-built shard batches (see engine.Source).
type udpSource struct {
	conn  *net.UDPConn
	flush time.Duration
	meta  chan replyMeta
	reply func(token uint64, verdict int32, addr netip.AddrPort)

	seg pcapio.Segment

	received     int
	decodeErrors int
	offered      int
	closed       bool
}

func (s *udpSource) Next(hs []rules.Header) (int, bool) {
	if s.closed {
		return 0, false
	}
	s.seg.Reset()
	// One deadline covers the whole batch: every read until it fires
	// shares the same absolute cutoff, so arm it once, not per datagram
	// (a syscall per packet on the receive path).
	if err := s.conn.SetReadDeadline(time.Now().Add(s.flush)); err != nil {
		s.closed = true
		return 0, false
	}
	n := 0
	for n < len(hs) {
		buf := s.seg.Grow(pcapio.MaxRequestLen + 1)
		m, addr, err := s.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				break // idle: hand back a short fill so the engine flushes
			}
			s.closed = true // socket closed or broken: end of stream
			break
		}
		s.seg.Commit(m)
		s.received++
		token, frame, err := pcapio.ParseRequest(s.seg.Packet(s.seg.Count() - 1))
		if err != nil {
			s.decodeErrors++
			s.reply(0, pcapio.VerdictDecodeError, addr)
			continue
		}
		h, err := wire.ParseFrame(frame)
		if err != nil {
			s.decodeErrors++
			s.reply(token, pcapio.VerdictDecodeError, addr)
			continue
		}
		hs[n] = h
		n++
		s.offered++
		s.meta <- replyMeta{token: token, addr: addr}
	}
	return n, !s.closed
}

// Serve classifies datagrams arriving on conn until ctx is canceled
// (cancellation is the normal shutdown path and is not reported as an
// error). The caller keeps ownership of conn.
func Serve(ctx context.Context, conn *net.UDPConn, cl engine.Classifier, cfg ServerConfig) (ServeReport, error) {
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	ecfg := cfg.Engine
	ecfg.PreserveOrder = true

	// Size the metadata queue near the engine's in-flight packet bound so
	// it never backpressures the receive loop on the steady path. A full
	// queue cannot deadlock — the emitter pops one entry per result and
	// every result's entry was pushed before its header entered the
	// engine, so the pop side never waits on the push side — it would
	// only stall the dispatcher briefly. Mirror the engine's defaulting
	// for the unset knobs.
	d := engine.DefaultConfig()
	shards, queueDepth, batch := ecfg.Shards, ecfg.QueueDepth, ecfg.BatchSize
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = d.QueueDepth
	}
	if batch <= 0 {
		batch = d.BatchSize
	}
	inFlight := shards * (queueDepth + 4) * batch

	// Decode-error replies are written on the dispatcher goroutine and
	// verdict replies on the emitter goroutine; WriteToUDPAddrPort is
	// concurrency-safe but the scratch reply buffers are not, so each
	// side owns one.
	var srcReplyBuf, emitReplyBuf [pcapio.ReplyLen]byte
	srcReplies, emitReplies := 0, 0
	src := &udpSource{
		conn:  conn,
		flush: cfg.FlushInterval,
		meta:  make(chan replyMeta, inFlight),
		reply: func(token uint64, verdict int32, addr netip.AddrPort) {
			if _, err := conn.WriteToUDPAddrPort(pcapio.PutReply(srcReplyBuf[:], token, verdict), addr); err == nil {
				srcReplies++
			}
		},
	}

	st, err := engine.RunStream(ctx, cl, ecfg, src, func(r engine.Result) {
		m := <-src.meta
		if !cfg.Echo {
			return
		}
		verdict := pcapio.VerdictShed
		if r.Err == nil {
			verdict = int32(r.Match) // rule index, or −1 == VerdictNoMatch
		}
		// Shed, canceled or panicked packets all present to the client as
		// VerdictShed — "not classified, resend if you care" — rather than
		// leaking server internals.
		if _, err := conn.WriteToUDPAddrPort(pcapio.PutReply(emitReplyBuf[:], m.token, verdict), m.addr); err == nil {
			emitReplies++
		}
	})
	if err != nil && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		err = nil // cancellation is how a serve run ends
	}

	report := ServeReport{
		Received:     src.received,
		DecodeErrors: src.decodeErrors,
		Offered:      src.offered,
		Classified:   st.Packets,
		Shed:         st.Shed,
		Canceled:     st.Canceled,
		Panics:       st.Panics,
		Replies:      srcReplies + emitReplies,
		Stats:        st,
	}
	if err == nil {
		err = report.Check()
	}
	return report, err
}

// ListenAndServe binds a UDP socket on addr, announces it on startup
// (the l-NIC server prints its ready line for the same reason: the load
// generator scrapes it), and serves until ctx cancels.
func ListenAndServe(ctx context.Context, addr string, cl engine.Classifier, cfg ServerConfig, announce *os.File) (ServeReport, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return ServeReport{}, fmt.Errorf("iofront: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return ServeReport{}, fmt.Errorf("iofront: %w", err)
	}
	defer conn.Close()
	if announce != nil {
		fmt.Fprintf(announce, "iofront: serving on %s\n", conn.LocalAddr())
	}
	return Serve(ctx, conn, cl, cfg)
}
