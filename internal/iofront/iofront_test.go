package iofront

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/expcuts"
	"repro/internal/pcapio"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func loadFixtures(t *testing.T, packets int) (*rules.RuleSet, *expcuts.Tree, []rules.Header) {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 200, Seed: 2001})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: packets, Seed: 2002, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return rs, tree, tr.Headers
}

// onWire is the header after its frame round trip: non-TCP/UDP protocols
// carry no ports on the wire.
func onWire(h rules.Header) rules.Header {
	if h.Proto != rules.ProtoTCP && h.Proto != rules.ProtoUDP {
		h.SrcPort, h.DstPort = 0, 0
	}
	return h
}

// startServer serves cl on a loopback socket and returns its address
// plus a stop function that shuts it down and hands back the report.
func startServer(t *testing.T, cl engine.Classifier, cfg ServerConfig) (string, func() ServeReport) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		rep ServeReport
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := Serve(ctx, conn, cl, cfg)
		done <- outcome{rep, err}
	}()
	return conn.LocalAddr().String(), func() ServeReport {
		cancel()
		o := <-done
		conn.Close()
		if o.err != nil {
			t.Fatalf("serve: %v", o.err)
		}
		return o.rep
	}
}

func TestLoopbackOracleExact(t *testing.T) {
	rs, tree, headers := loadFixtures(t, 3000)
	addr, stop := startServer(t, tree, ServerConfig{
		Engine: engine.Config{Shards: 2},
		Echo:   true,
	})
	rep, err := RunLoad(context.Background(), LoadConfig{Addr: addr, Headers: headers})
	if err != nil {
		t.Fatal(err)
	}
	srep := stop()

	if rep.Sent != len(headers) {
		t.Fatalf("sent %d of %d", rep.Sent, len(headers))
	}
	if rep.Replies+rep.Lost != rep.Sent {
		t.Fatalf("replies %d + lost %d != sent %d", rep.Replies, rep.Lost, rep.Sent)
	}
	if rep.Replies == 0 {
		t.Fatal("no replies over loopback")
	}
	if rep.DecodeErrors != 0 || srep.DecodeErrors != 0 {
		t.Fatalf("decode errors on well-formed traffic: client %d server %d", rep.DecodeErrors, srep.DecodeErrors)
	}
	// Every answered packet must carry the linear oracle's verdict.
	for i, v := range rep.Verdicts {
		if v == VerdictNone || v == pcapio.VerdictShed {
			continue
		}
		if want := int32(rs.Match(onWire(headers[i]))); v != want {
			t.Fatalf("packet %d: verdict %d, oracle %d", i, v, want)
		}
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.P999 < rep.P99 {
		t.Fatalf("implausible latency quantiles: p50 %v p99 %v p999 %v", rep.P50, rep.P99, rep.P999)
	}
	// Server-side conservation: Check ran inside Serve; cross-check
	// against the client's view (loopback may still drop datagrams, so
	// inequalities, not equalities, across the socket).
	if srep.Received > rep.Sent {
		t.Fatalf("server received %d of %d sent", srep.Received, rep.Sent)
	}
	if srep.Replies < rep.Replies {
		t.Fatalf("server wrote %d replies, client saw %d", srep.Replies, rep.Replies)
	}
}

func TestLoopbackPacedRate(t *testing.T) {
	_, tree, headers := loadFixtures(t, 400)
	addr, stop := startServer(t, tree, ServerConfig{Engine: engine.Config{Shards: 1}, Echo: true})
	rate := 20000
	rep, err := RunLoad(context.Background(), LoadConfig{Addr: addr, Headers: headers, Rate: rate})
	if err != nil {
		t.Fatal(err)
	}
	stop()
	// 400 packets at 20k pps is 20ms of pacing; the achieved rate must
	// land at or under the target (pacing never bursts above it) and the
	// run must actually have been stretched out.
	if rep.AchievedPPS > float64(rate)*1.25 {
		t.Fatalf("achieved %.0f pps against a %d pps target", rep.AchievedPPS, rate)
	}
	if rep.Elapsed < 15*time.Millisecond {
		t.Fatalf("paced run finished in %v", rep.Elapsed)
	}
}

func TestServerAnswersMalformedRequests(t *testing.T) {
	_, tree, _ := loadFixtures(t, 10)
	addr, stop := startServer(t, tree, ServerConfig{Engine: engine.Config{Shards: 1}, Echo: true})
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A token with a garbage frame: decode error, token echoed back.
	req := pcapio.AppendRequest(nil, 99, []byte{1, 2, 3, 4})
	if _, err := conn.Write(req); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	m, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	token, verdict, err := pcapio.ParseReply(buf[:m])
	if err != nil {
		t.Fatal(err)
	}
	if token != 99 || verdict != pcapio.VerdictDecodeError {
		t.Fatalf("reply token %d verdict %d, want 99 / %d", token, verdict, pcapio.VerdictDecodeError)
	}

	// Shorter than a token: counted and answered (token 0), still a
	// decode error, and the books must balance.
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	rep := stop()
	if rep.DecodeErrors != 2 || rep.Offered != 0 {
		t.Fatalf("decode errors %d (want 2), offered %d (want 0)", rep.DecodeErrors, rep.Offered)
	}
}

func TestServeReportCheck(t *testing.T) {
	good := ServeReport{Received: 10, DecodeErrors: 2, Offered: 8, Classified: 5, Shed: 2, Canceled: 1}
	if err := good.Check(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Offered = 7
	if bad.Check() == nil {
		t.Error("unbalanced receive accounting passed Check")
	}
	bad = good
	bad.Classified = 4
	if bad.Check() == nil {
		t.Error("unbalanced outcome accounting passed Check")
	}
}

func TestLoadRejectsEmptyTraffic(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{Addr: "127.0.0.1:1"}); err == nil {
		t.Error("empty traffic accepted")
	}
}
