package iofront

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pcapio"
	"repro/internal/rules"
	"repro/internal/wire"
)

// LoadConfig configures RunLoad.
type LoadConfig struct {
	// Addr is the server's UDP address.
	Addr string
	// Headers is the traffic to send, one request per header, token =
	// index. pktgen.Generate is the usual origin (rule-directed traffic).
	Headers []rules.Header
	// Rate is the send pacing in packets per second; 0 sends unpaced.
	Rate int
	// Drain is how long to wait for straggler replies after the last
	// send. 0 means DefaultDrain.
	Drain time.Duration
}

// DefaultDrain comfortably exceeds any loopback round trip.
const DefaultDrain = 300 * time.Millisecond

// VerdictNone marks a packet that never got a reply in
// LoadReport.Verdicts.
const VerdictNone int32 = math.MinInt32

// LoadReport is the load generator's view of a run: wire-level
// accounting, the verdict per packet, and round-trip latency quantiles.
type LoadReport struct {
	// Sent counts requests written; Replies the distinct tokens answered.
	// Lost = Sent − Replies − late duplicates (packets that never heard
	// back inside the drain window).
	Sent, Replies, Lost int
	// Matched / NoMatch / Shed / DecodeErrors split Replies by verdict.
	Matched, NoMatch, Shed, DecodeErrors int

	// Verdicts holds each packet's verdict by send index (VerdictNone
	// when no reply arrived), for oracle verification.
	Verdicts []int32

	// Elapsed covers first send to last send; AchievedPPS = Sent/Elapsed.
	Elapsed     time.Duration
	AchievedPPS float64
	// ShedRate is Shed/Replies (0 when nothing was answered).
	ShedRate float64

	// P50, P99, P999 and Mean are round-trip latency order statistics
	// (send to reply-read) from a log-linear histogram with ≈3%
	// resolution.
	P50, P99, P999, Mean time.Duration
	// Latency is the full histogram snapshot behind the quantiles.
	Latency obs.LatSnapshot
}

// RunLoad streams cfg.Headers at the server as framed requests, paced at
// cfg.Rate, and collects replies concurrently until a drain window after
// the last send closes. Lost packets (UDP is allowed to drop) are
// reported, not errors; only socket-level failures are.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if len(cfg.Headers) == 0 {
		return LoadReport{}, fmt.Errorf("iofront: no traffic to send")
	}
	if cfg.Drain <= 0 {
		cfg.Drain = DefaultDrain
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return LoadReport{}, fmt.Errorf("iofront: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return LoadReport{}, fmt.Errorf("iofront: %w", err)
	}
	defer conn.Close()

	n := len(cfg.Headers)
	// Requests are prebuilt so the send loop is pacing plus one write.
	reqs := make([][]byte, n)
	arena := make([]byte, 0, n*(pcapio.ReqHeaderLen+wire.FrameSize))
	for i, h := range cfg.Headers {
		start := len(arena)
		arena = pcapio.AppendRequest(arena, uint64(i), wire.BuildFrame(h))
		reqs[i] = arena[start:len(arena):len(arena)]
	}

	// sentAt and verdicts are written by the sender/receiver pair with no
	// lock between them: a socket round trip is not a Go happens-before
	// edge, so both sides go through atomics. Times are nanoseconds since
	// base; verdict slots hold VerdictNone until a reply lands.
	base := time.Now()
	sentAt := make([]atomic.Int64, n)
	verdicts := make([]atomic.Int32, n)
	for i := range verdicts {
		verdicts[i].Store(VerdictNone)
	}
	var hist obs.LatHist

	recvDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 64)
		for {
			m, err := conn.Read(buf)
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					recvDone <- nil // drain window closed
				} else {
					recvDone <- err
				}
				return
			}
			now := time.Since(base).Nanoseconds()
			token, verdict, err := pcapio.ParseReply(buf[:m])
			if err != nil || token >= uint64(n) {
				continue // not ours; ignore
			}
			at := sentAt[int(token)].Load()
			if at == 0 {
				continue // reply for a packet we have not sent: ignore
			}
			if verdicts[int(token)].Swap(verdict) == VerdictNone {
				hist.Observe(uint64(now - at))
			}
		}
	}()

	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(int64(time.Second) / int64(cfg.Rate))
	}
	sendStart := time.Now()
	sent := 0
	for i, req := range reqs {
		if ctx.Err() != nil {
			break
		}
		if interval > 0 {
			if d := time.Until(sendStart.Add(time.Duration(i) * interval)); d > 0 {
				time.Sleep(d)
			}
		}
		sentAt[i].Store(time.Since(base).Nanoseconds() | 1) // |1: never the unsent sentinel 0
		if _, err := conn.Write(req); err != nil {
			return LoadReport{}, fmt.Errorf("iofront: sending packet %d: %w", i, err)
		}
		sent++
	}
	elapsed := time.Since(sendStart)

	// Let stragglers land, then expire the receiver via its deadline.
	drainCtx, cancel := context.WithTimeout(ctx, cfg.Drain)
	defer cancel()
	<-drainCtx.Done()
	if err := conn.SetReadDeadline(time.Now()); err != nil {
		return LoadReport{}, fmt.Errorf("iofront: %w", err)
	}
	if err := <-recvDone; err != nil {
		return LoadReport{}, fmt.Errorf("iofront: receiving replies: %w", err)
	}

	rep := LoadReport{
		Sent:     sent,
		Verdicts: make([]int32, n),
		Elapsed:  elapsed,
		Latency:  hist.Snapshot(),
	}
	for i := range rep.Verdicts {
		v := verdicts[i].Load()
		rep.Verdicts[i] = v
		if i >= sent {
			continue
		}
		switch {
		case v == VerdictNone:
			rep.Lost++
		case v >= 0:
			rep.Replies++
			rep.Matched++
		case v == pcapio.VerdictNoMatch:
			rep.Replies++
			rep.NoMatch++
		case v == pcapio.VerdictShed:
			rep.Replies++
			rep.Shed++
		case v == pcapio.VerdictDecodeError:
			rep.Replies++
			rep.DecodeErrors++
		default:
			rep.Replies++
		}
	}
	if elapsed > 0 {
		rep.AchievedPPS = float64(sent) / elapsed.Seconds()
	}
	if rep.Replies > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Replies)
	}
	rep.P50 = time.Duration(rep.Latency.Quantile(0.5))
	rep.P99 = time.Duration(rep.Latency.Quantile(0.99))
	rep.P999 = time.Duration(rep.Latency.Quantile(0.999))
	rep.Mean = time.Duration(rep.Latency.Mean())
	return rep, nil
}
