// Package npsim models the Intel IXP2850 network processor as a
// deterministic discrete-event simulation: microengines (MEs) that execute
// one hardware thread at a time with zero-cost context switching, hardware
// threads that hide SRAM latency, and word-oriented QDR SRAM channels with
// finite command FIFOs. It replays the per-packet access programs recorded
// by the classifiers (internal/nptrace) and measures packet throughput,
// reproducing the paper's evaluation methodology (§5, §6).
//
// The model captures the three performance mechanisms §6.7 identifies:
//
//   - SRAM bandwidth: each channel serves one command at a time, a command
//     costing a fixed overhead plus per-word transfer time, scaled by the
//     channel's bandwidth headroom (the share not consumed by the base
//     packet application).
//   - I/O command rate: each channel accepts a bounded number of
//     outstanding commands (the command FIFO); threads attempting to issue
//     beyond it stall.
//   - Latency hiding: while a thread waits for SRAM, its ME runs sibling
//     threads; throughput scales with thread count until a channel or the
//     ME itself saturates.
//
// Model constants are calibrated from public IXP2850 characteristics
// (1.4 GHz MEs, 233 MHz QDR SRAM, ~150–300 cycle load-to-use latency); see
// DESIGN.md for the calibration targets and EXPERIMENTS.md for measured
// deviations from the paper.
package npsim

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/memlayout"
	"repro/internal/nptrace"
)

// SRAMConfig models the QDR SRAM subsystem.
type SRAMConfig struct {
	// LatencyCycles is the load-to-use latency of a read in ME cycles,
	// excluding queueing: controller pipeline plus push-bus transfer.
	LatencyCycles uint32
	// CmdOverheadCycles is the per-command channel occupancy independent
	// of burst length.
	CmdOverheadCycles float64
	// WordCycles is the per-word channel occupancy in ME cycles
	// (1.4 GHz ME vs 233 MHz QDR gives a handful of ME cycles per
	// 32-bit word).
	WordCycles float64
	// FIFODepth is the maximum outstanding commands per channel,
	// including the one in service; issuing threads stall beyond it.
	FIFODepth int
	// Headroom scales each channel's available bandwidth: the share left
	// over by the base application (Table 4 of the paper).
	Headroom memlayout.Headroom
}

// Config parameterizes one simulation run.
type Config struct {
	// Threads is the total number of hardware threads running the
	// classification stage (the paper sweeps 7..71).
	Threads int
	// ThreadsPerME is the hardware thread count per microengine (8 on
	// the IXP2850). Threads are packed onto ⌈Threads/ThreadsPerME⌉ MEs.
	ThreadsPerME int
	// ClockMHz is the ME clock (1400 for the IXP2850).
	ClockMHz float64
	// ContextSwitchCycles is the cost of switching the ME to another
	// ready thread (hardware context switching is nearly free).
	ContextSwitchCycles uint32
	// PerPacketOverheadCycles is the ME work per packet outside
	// classification proper (dequeue from the Rx ring, header fetch from
	// local memory, result enqueue).
	PerPacketOverheadCycles uint32
	// MaxIngressMbps caps the reported throughput at the media interface
	// capacity (the paper's platform tops out around 10 Gb/s).
	MaxIngressMbps float64
	// PacketBytes converts packets to bits for throughput (64-byte
	// minimum-size packets in the paper).
	PacketBytes int
	SRAM        SRAMConfig
}

// DefaultConfig returns the calibrated IXP2850 model with the paper's full
// configuration: 71 threads (9 MEs × 8 threads minus one reserved for
// exception packets).
func DefaultConfig() Config {
	return Config{
		Threads:                 71,
		ThreadsPerME:            8,
		ClockMHz:                1400,
		ContextSwitchCycles:     1,
		PerPacketOverheadCycles: 100,
		MaxIngressMbps:          10000,
		PacketBytes:             64,
		SRAM: SRAMConfig{
			LatencyCycles:     250,
			CmdOverheadCycles: 1.5,
			WordCycles:        4,
			FIFODepth:         16,
			Headroom:          memlayout.UniformHeadroom,
		},
	}
}

func (c *Config) fillDefaults() error {
	d := DefaultConfig()
	if c.Threads == 0 {
		c.Threads = d.Threads
	}
	if c.ThreadsPerME == 0 {
		c.ThreadsPerME = d.ThreadsPerME
	}
	if c.ClockMHz == 0 {
		c.ClockMHz = d.ClockMHz
	}
	if c.ContextSwitchCycles == 0 {
		c.ContextSwitchCycles = d.ContextSwitchCycles
	}
	if c.PerPacketOverheadCycles == 0 {
		c.PerPacketOverheadCycles = d.PerPacketOverheadCycles
	}
	if c.MaxIngressMbps == 0 {
		c.MaxIngressMbps = d.MaxIngressMbps
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = d.PacketBytes
	}
	if c.SRAM.LatencyCycles == 0 {
		c.SRAM.LatencyCycles = d.SRAM.LatencyCycles
	}
	if c.SRAM.CmdOverheadCycles == 0 {
		c.SRAM.CmdOverheadCycles = d.SRAM.CmdOverheadCycles
	}
	if c.SRAM.WordCycles == 0 {
		c.SRAM.WordCycles = d.SRAM.WordCycles
	}
	if c.SRAM.FIFODepth == 0 {
		c.SRAM.FIFODepth = d.SRAM.FIFODepth
	}
	if c.SRAM.Headroom == (memlayout.Headroom{}) {
		c.SRAM.Headroom = d.SRAM.Headroom
	}
	if c.Threads < 1 {
		return fmt.Errorf("npsim: threads must be >= 1, got %d", c.Threads)
	}
	if c.ThreadsPerME < 1 {
		return fmt.Errorf("npsim: threads per ME must be >= 1, got %d", c.ThreadsPerME)
	}
	if err := c.SRAM.Headroom.Validate(); err != nil {
		return err
	}
	return nil
}

// Result reports one simulation run.
type Result struct {
	// Packets completed and virtual Cycles elapsed.
	Packets int
	Cycles  uint64
	// ThroughputMbps is the headline number (capped at MaxIngressMbps);
	// OfferedMbps is the uncapped model output.
	ThroughputMbps float64
	OfferedMbps    float64
	// PPS is packets per second (uncapped).
	PPS float64
	// ChannelUtilization is the busy fraction of each SRAM channel.
	ChannelUtilization [memlayout.NumChannels]float64
	// MEUtilization is the mean busy fraction of the MEs.
	MEUtilization float64
	// AvgPacketCycles is the mean per-packet latency in ME cycles;
	// P50/P99PacketCycles are the median and 99th-percentile latencies.
	AvgPacketCycles float64
	P50PacketCycles uint64
	P99PacketCycles uint64
}

// Run replays the access programs on the modelled NP until total packets
// are classified, cycling through the program list. It is fully
// deterministic.
func Run(cfg Config, programs []nptrace.Program, totalPackets int) (Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Result{}, err
	}
	if len(programs) == 0 {
		return Result{}, fmt.Errorf("npsim: no access programs")
	}
	if totalPackets <= 0 {
		totalPackets = 50000
	}
	m := newMachine(cfg, programs, totalPackets)
	m.start()
	m.sim.Run()
	return m.result()
}

// machine is the simulation state.
type machine struct {
	cfg      Config
	sim      *des.Sim
	programs []nptrace.Program

	mes      []*me
	channels []*channel

	nextPacket   int // shared program counter
	totalPackets int
	donePackets  int
	latencySum   uint64
	latencies    []uint64
}

type me struct {
	m        *machine
	busy     bool
	ready    []*thread // FIFO of runnable threads
	busyTime uint64
}

type thread struct {
	me      *me
	prog    *nptrace.Program
	step    int
	started des.Time // packet start time
}

type request struct {
	t      *thread
	cycles des.Time // channel occupancy
}

type channel struct {
	m        *machine
	idx      int
	busy     bool
	queue    []request // commands waiting for or in service
	blocked  []request // threads stalled on a full FIFO
	depth    int
	busyTime uint64
}

func newMachine(cfg Config, programs []nptrace.Program, totalPackets int) *machine {
	m := &machine{
		cfg:          cfg,
		sim:          &des.Sim{},
		programs:     programs,
		totalPackets: totalPackets,
	}
	numMEs := (cfg.Threads + cfg.ThreadsPerME - 1) / cfg.ThreadsPerME
	for i := 0; i < numMEs; i++ {
		m.mes = append(m.mes, &me{m: m})
	}
	for c := 0; c < memlayout.NumChannels; c++ {
		m.channels = append(m.channels, &channel{m: m, idx: c, depth: cfg.SRAM.FIFODepth})
	}
	return m
}

// start seeds every thread with its first packet.
func (m *machine) start() {
	for i := 0; i < m.cfg.Threads; i++ {
		t := &thread{me: m.mes[i%len(m.mes)]}
		if m.assign(t) {
			t.me.enqueue(t)
		}
	}
}

// assign hands the thread its next packet; false when the workload is done.
func (m *machine) assign(t *thread) bool {
	if m.nextPacket >= m.totalPackets {
		return false
	}
	t.prog = &m.programs[m.nextPacket%len(m.programs)]
	m.nextPacket++
	t.step = -1 // -1 = per-packet overhead phase
	t.started = m.sim.Now()
	return true
}

// enqueue makes the thread runnable on its ME.
func (e *me) enqueue(t *thread) {
	e.ready = append(e.ready, t)
	if !e.busy {
		e.dispatch()
	}
}

// dispatch runs the next ready thread's compute phase.
func (e *me) dispatch() {
	if len(e.ready) == 0 {
		e.busy = false
		return
	}
	e.busy = true
	t := e.ready[0]
	e.ready = e.ready[1:]
	cycles := des.Time(e.m.cfg.ContextSwitchCycles) + t.computeCycles()
	e.busyTime += uint64(cycles)
	e.m.sim.After(cycles, func(des.Time) {
		t.computeDone()
		e.dispatch()
	})
}

// computeCycles returns the ME work of the thread's current phase.
func (t *thread) computeCycles() des.Time {
	if t.step == -1 {
		return des.Time(t.me.m.cfg.PerPacketOverheadCycles)
	}
	if t.step < len(t.prog.Steps) {
		return des.Time(t.prog.Steps[t.step].Compute)
	}
	return des.Time(t.prog.FinalCompute)
}

// computeDone advances the thread after its compute phase: issue the next
// memory command, or finish the packet.
func (t *thread) computeDone() {
	m := t.me.m
	if t.step >= 0 && t.step < len(t.prog.Steps) {
		s := &t.prog.Steps[t.step]
		m.channels[s.Channel].submit(t, s)
		return
	}
	if t.step == -1 {
		// Overhead phase done; move to the first access (or straight to
		// the tail for programs with no memory steps).
		t.step = 0
		if len(t.prog.Steps) > 0 {
			s := &t.prog.Steps[0]
			m.channels[s.Channel].submit(t, s)
			return
		}
		// No accesses: fall through to the final compute phase by
		// re-entering the ME queue.
		t.me.enqueue(t)
		return
	}
	// Packet complete.
	m.donePackets++
	lat := uint64(m.sim.Now() - t.started)
	m.latencySum += lat
	m.latencies = append(m.latencies, lat)
	if m.assign(t) {
		t.me.enqueue(t)
	}
}

// submit places the thread's command on the channel, stalling on a full
// FIFO.
func (c *channel) submit(t *thread, s *nptrace.Step) {
	cfg := &c.m.cfg.SRAM
	occupancy := (cfg.CmdOverheadCycles + float64(s.Words)*cfg.WordCycles) / cfg.Headroom[c.idx]
	req := request{t: t, cycles: des.Time(occupancy + 0.5)}
	if len(c.queue) >= c.depth {
		c.blocked = append(c.blocked, req)
		return
	}
	c.queue = append(c.queue, req)
	if !c.busy {
		c.serve()
	}
}

// serve processes the head-of-line command.
func (c *channel) serve() {
	if len(c.queue) == 0 {
		c.busy = false
		return
	}
	c.busy = true
	req := c.queue[0]
	c.busyTime += uint64(req.cycles)
	c.m.sim.After(req.cycles, func(des.Time) {
		c.queue = c.queue[1:]
		// A FIFO slot opened: admit one blocked command.
		if len(c.blocked) > 0 {
			c.queue = append(c.queue, c.blocked[0])
			c.blocked = c.blocked[1:]
		}
		// The data returns after the pipeline latency; the thread then
		// becomes runnable for its next phase.
		t := req.t
		c.m.sim.After(des.Time(c.m.cfg.SRAM.LatencyCycles), func(des.Time) {
			t.step++
			t.me.enqueue(t)
		})
		c.serve()
	})
}

func (m *machine) result() (Result, error) {
	if m.donePackets == 0 {
		return Result{}, fmt.Errorf("npsim: simulation completed no packets")
	}
	r := Result{Packets: m.donePackets, Cycles: uint64(m.sim.Now())}
	seconds := float64(r.Cycles) / (m.cfg.ClockMHz * 1e6)
	r.PPS = float64(r.Packets) / seconds
	r.OfferedMbps = r.PPS * float64(m.cfg.PacketBytes) * 8 / 1e6
	r.ThroughputMbps = r.OfferedMbps
	if r.ThroughputMbps > m.cfg.MaxIngressMbps {
		r.ThroughputMbps = m.cfg.MaxIngressMbps
	}
	for i, c := range m.channels {
		r.ChannelUtilization[i] = float64(c.busyTime) / float64(r.Cycles)
	}
	var meBusy uint64
	for _, e := range m.mes {
		meBusy += e.busyTime
	}
	r.MEUtilization = float64(meBusy) / float64(uint64(len(m.mes))*r.Cycles)
	r.AvgPacketCycles = float64(m.latencySum) / float64(r.Packets)
	sort.Slice(m.latencies, func(i, j int) bool { return m.latencies[i] < m.latencies[j] })
	r.P50PacketCycles = m.latencies[len(m.latencies)/2]
	r.P99PacketCycles = m.latencies[len(m.latencies)*99/100]
	return r, nil
}
