package npsim

import (
	"math"
	"testing"

	"repro/internal/memlayout"
	"repro/internal/nptrace"
)

// prog builds a synthetic access program: n single-word reads on the given
// channel, each preceded by `compute` ME cycles.
func prog(n int, ch uint8, compute uint32) nptrace.Program {
	p := nptrace.Program{}
	for i := 0; i < n; i++ {
		p.Steps = append(p.Steps, nptrace.Step{Compute: compute, Channel: ch, Words: 1})
	}
	return p
}

// spread builds a program whose n reads rotate across all four channels.
func spread(n int, words uint16, compute uint32) nptrace.Program {
	p := nptrace.Program{}
	for i := 0; i < n; i++ {
		p.Steps = append(p.Steps, nptrace.Step{Compute: compute, Channel: uint8(i % 4), Words: words})
	}
	return p
}

func run(t *testing.T, cfg Config, p nptrace.Program, packets int) Result {
	t.Helper()
	r, err := Run(cfg, []nptrace.Program{p}, packets)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	p := spread(26, 1, 10)
	a := run(t, cfg, p, 5000)
	b := run(t, cfg, p, 5000)
	if a != b {
		t.Fatalf("two identical runs differ:\n%+v\n%+v", a, b)
	}
}

func TestLatencyHiding(t *testing.T) {
	// One thread is latency-bound; 8 threads on one ME overlap the waits.
	p := spread(20, 1, 10)
	cfg := DefaultConfig()
	cfg.Threads = 1
	one := run(t, cfg, p, 2000)
	cfg.Threads = 8
	eight := run(t, cfg, p, 2000)
	speedup := eight.PPS / one.PPS
	if speedup < 5 {
		t.Errorf("8-thread speedup = %.2f, want >= 5 (latency hiding)", speedup)
	}
	if speedup > 8.5 {
		t.Errorf("8-thread speedup = %.2f, impossibly superlinear", speedup)
	}
}

func TestThreadScalingAcrossMEs(t *testing.T) {
	// In the latency-bound regime throughput grows near-linearly with
	// thread count across MEs (Figure 7's shape).
	p := spread(26, 1, 10)
	var prev float64
	for _, threads := range []int{8, 16, 32, 64} {
		cfg := DefaultConfig()
		cfg.Threads = threads
		cfg.MaxIngressMbps = 1e12 // uncapped for the scaling check
		r := run(t, cfg, p, 4000)
		if prev > 0 {
			gain := r.PPS / prev
			if gain < 1.6 {
				t.Errorf("threads %d -> %d: gain %.2f, want near 2x", threads/2, threads, gain)
			}
		}
		prev = r.PPS
	}
}

func TestSingleChannelSaturates(t *testing.T) {
	// All accesses on channel 0: its utilization approaches 1 and
	// throughput is far below the spread-traffic case.
	pSingle := prog(26, 0, 10)
	pSpread := spread(26, 1, 10)
	cfg := DefaultConfig()
	cfg.MaxIngressMbps = 1e12
	single := run(t, cfg, pSingle, 8000)
	four := run(t, cfg, pSpread, 8000)
	if single.ChannelUtilization[0] < 0.9 {
		t.Errorf("channel 0 utilization = %.2f, want saturation", single.ChannelUtilization[0])
	}
	if single.ChannelUtilization[1] != 0 {
		t.Errorf("channel 1 utilization = %.2f, want 0", single.ChannelUtilization[1])
	}
	if four.PPS < 1.3*single.PPS {
		t.Errorf("spreading over 4 channels should beat 1 channel: %.0f vs %.0f pps", four.PPS, single.PPS)
	}
}

func TestHeadroomScalesBandwidth(t *testing.T) {
	p := prog(26, 0, 10)
	cfg := DefaultConfig()
	cfg.MaxIngressMbps = 1e12
	full := run(t, cfg, p, 6000)
	cfg.SRAM.Headroom = memlayout.Headroom{0.5, 1, 1, 1}
	half := run(t, cfg, p, 6000)
	ratio := half.PPS / full.PPS
	if ratio < 0.4 || ratio > 0.65 {
		t.Errorf("halving channel 0 headroom scaled saturated throughput by %.2f, want ~0.5", ratio)
	}
}

func TestFIFODepthLimitsThroughput(t *testing.T) {
	// A tiny command FIFO on a saturated channel stalls issuing threads.
	p := prog(26, 0, 10)
	deep := DefaultConfig()
	deep.MaxIngressMbps = 1e12
	shallow := deep
	shallow.SRAM.FIFODepth = 1
	rDeep := run(t, deep, p, 6000)
	rShallow := run(t, shallow, p, 6000)
	if rShallow.PPS > rDeep.PPS*1.001 {
		t.Errorf("FIFO depth 1 (%.0f pps) should not beat depth 16 (%.0f pps)", rShallow.PPS, rDeep.PPS)
	}
}

func TestBurstCostsMoreThanWord(t *testing.T) {
	// 6-word commands occupy the channel longer than 1-word commands;
	// under channel saturation throughput drops accordingly (the linear
	// search effect, Figure 8).
	cfg := DefaultConfig()
	cfg.MaxIngressMbps = 1e12
	word := run(t, cfg, prog(8, 0, 10), 6000)
	burst := Result{}
	{
		p := nptrace.Program{}
		for i := 0; i < 8; i++ {
			p.Steps = append(p.Steps, nptrace.Step{Compute: 10, Channel: 0, Words: 6})
		}
		burst = run(t, cfg, p, 6000)
	}
	if burst.PPS >= word.PPS {
		t.Errorf("6-word bursts (%.0f pps) should be slower than 1-word reads (%.0f pps)", burst.PPS, word.PPS)
	}
	wantRatio := (cfg.SRAM.CmdOverheadCycles + 1*cfg.SRAM.WordCycles) /
		(cfg.SRAM.CmdOverheadCycles + 6*cfg.SRAM.WordCycles)
	got := burst.PPS / word.PPS
	if math.Abs(got-wantRatio) > 0.15 {
		t.Errorf("burst/word throughput ratio = %.2f, want ~%.2f (channel-bound)", got, wantRatio)
	}
}

func TestIngressCap(t *testing.T) {
	// A trivial program would exceed the media interface; the headline
	// number is capped while OfferedMbps keeps the model output.
	p := spread(1, 1, 5)
	cfg := DefaultConfig()
	r := run(t, cfg, p, 5000)
	if r.ThroughputMbps > cfg.MaxIngressMbps {
		t.Errorf("throughput %.0f exceeds ingress cap", r.ThroughputMbps)
	}
	if r.OfferedMbps <= cfg.MaxIngressMbps {
		t.Errorf("offered %.0f should exceed the cap for a trivial program", r.OfferedMbps)
	}
}

func TestComputeOnlyPrograms(t *testing.T) {
	// Programs with no memory steps exercise the ME-bound path.
	p := nptrace.Program{FinalCompute: 100}
	cfg := DefaultConfig()
	cfg.Threads = 8
	cfg.MaxIngressMbps = 1e12
	r := run(t, cfg, p, 3000)
	if r.Packets != 3000 {
		t.Errorf("packets = %d", r.Packets)
	}
	if r.MEUtilization < 0.95 {
		t.Errorf("ME utilization = %.2f, want ~1 for compute-bound work", r.MEUtilization)
	}
	// Throughput ≈ clock / (overhead + final + 2 context switches).
	perPacket := float64(cfg.PerPacketOverheadCycles) + 100 + 2*float64(cfg.ContextSwitchCycles)
	want := cfg.ClockMHz * 1e6 / perPacket
	if math.Abs(r.PPS-want)/want > 0.05 {
		t.Errorf("compute-bound PPS = %.0f, want ~%.0f", r.PPS, want)
	}
}

func TestAccountingConsistency(t *testing.T) {
	cfg := DefaultConfig()
	r := run(t, cfg, spread(26, 1, 10), 5000)
	if r.Packets != 5000 {
		t.Errorf("packets = %d", r.Packets)
	}
	if r.AvgPacketCycles <= 0 {
		t.Errorf("avg packet cycles = %v", r.AvgPacketCycles)
	}
	for c, u := range r.ChannelUtilization {
		if u < 0 || u > 1.000001 {
			t.Errorf("channel %d utilization = %v out of [0,1]", c, u)
		}
	}
	if r.MEUtilization <= 0 || r.MEUtilization > 1.000001 {
		t.Errorf("ME utilization = %v", r.MEUtilization)
	}
	// Little's-law sanity: threads >= PPS × avg latency (in seconds).
	concurrency := r.PPS * r.AvgPacketCycles / (cfg.ClockMHz * 1e6)
	if concurrency > float64(cfg.Threads)*1.001 {
		t.Errorf("implied concurrency %.1f exceeds %d threads", concurrency, cfg.Threads)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Run(DefaultConfig(), nil, 100); err == nil {
		t.Error("no programs should fail")
	}
	bad := DefaultConfig()
	bad.Threads = -1
	if _, err := Run(bad, []nptrace.Program{spread(1, 1, 1)}, 100); err == nil {
		t.Error("negative threads should fail")
	}
	worse := DefaultConfig()
	worse.SRAM.Headroom = memlayout.Headroom{2, 1, 1, 1}
	if _, err := Run(worse, []nptrace.Program{spread(1, 1, 1)}, 100); err == nil {
		t.Error("headroom > 1 should fail")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	cfg := DefaultConfig()
	r := run(t, cfg, spread(26, 1, 10), 5000)
	if r.P50PacketCycles == 0 || r.P99PacketCycles == 0 {
		t.Fatalf("percentiles not computed: p50=%d p99=%d", r.P50PacketCycles, r.P99PacketCycles)
	}
	if r.P99PacketCycles < r.P50PacketCycles {
		t.Errorf("p99 (%d) below p50 (%d)", r.P99PacketCycles, r.P50PacketCycles)
	}
	// The mean must sit within the distribution.
	if r.AvgPacketCycles < float64(r.P50PacketCycles)/4 || r.AvgPacketCycles > float64(r.P99PacketCycles)*4 {
		t.Errorf("mean %.0f implausible vs p50 %d / p99 %d", r.AvgPacketCycles, r.P50PacketCycles, r.P99PacketCycles)
	}
	// A saturated single channel must show a higher tail than spread traffic.
	sat := run(t, cfg, prog(26, 0, 10), 5000)
	if sat.P99PacketCycles <= r.P99PacketCycles {
		t.Errorf("saturated p99 (%d) should exceed spread p99 (%d)", sat.P99PacketCycles, r.P99PacketCycles)
	}
}
