package pktgen

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/rulegen"
	"repro/internal/rules"
)

func testSet(t *testing.T) *rules.RuleSet {
	t.Helper()
	s, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Firewall, Size: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateDeterministic(t *testing.T) {
	rs := testSet(t)
	cfg := Config{Count: 500, Seed: 9, MatchFraction: 0.8}
	a, err := Generate(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Headers, b.Headers) {
		t.Fatal("same config must generate identical traces")
	}
}

func TestGenerateCountAndBits(t *testing.T) {
	rs := testSet(t)
	tr, err := Generate(rs, Config{Count: 123, Seed: 1, MatchFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 123 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Bits() != 123*64*8 {
		t.Errorf("Bits = %d", tr.Bits())
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	rs := testSet(t)
	if _, err := Generate(rs, Config{Count: 0, Seed: 1}); err == nil {
		t.Error("count 0 should fail")
	}
	if _, err := Generate(rs, Config{Count: 5, Seed: 1, MatchFraction: 1.5}); err == nil {
		t.Error("bad match fraction should fail")
	}
	empty := rules.NewRuleSet("empty", nil)
	if _, err := Generate(empty, Config{Count: 5, Seed: 1, MatchFraction: 0.5}); err == nil {
		t.Error("directed generation from empty set should fail")
	}
}

func TestMatchFractionIsHonored(t *testing.T) {
	rs := testSet(t)
	tr, err := Generate(rs, Config{Count: 5000, Seed: 2, MatchFraction: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// With MatchFraction 1 every header is sampled from some rule's box,
	// so every header matches at least one rule.
	for i, h := range tr.Headers {
		if rs.Match(h) < 0 {
			t.Fatalf("header %d (%v) matches no rule despite MatchFraction=1", i, h)
		}
	}
}

func TestSampleRuleStaysInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		r := rulegen.RandomRule(rng)
		h := SampleRule(rng, &r)
		if !r.Matches(h) {
			t.Fatalf("sampled header %v does not match its rule %v", h, &r)
		}
	}
}

func TestSampleRuleFullDomains(t *testing.T) {
	// Full wildcard rule: sampling must not overflow on the 2^32 span.
	rng := rand.New(rand.NewSource(4))
	r := rules.Rule{SrcPort: rules.FullPortRange, DstPort: rules.FullPortRange, Proto: rules.AnyProto}
	sawHighIP := false
	for i := 0; i < 1000; i++ {
		h := SampleRule(rng, &r)
		if !r.Matches(h) {
			t.Fatal("wildcard rule must match every sampled header")
		}
		if h.SrcIP > 1<<31 {
			sawHighIP = true
		}
	}
	if !sawHighIP {
		t.Error("sampling never produced a high address; span arithmetic looks truncated")
	}
}

func TestRandomHeaderProtocolBias(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tcp := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if RandomHeader(rng).Proto == rules.ProtoTCP {
			tcp++
		}
	}
	if frac := float64(tcp) / n; frac < 0.5 {
		t.Errorf("TCP fraction = %.2f, want >= 0.5 (traffic-like bias)", frac)
	}
}
