// Package pktgen generates deterministic synthetic packet traces for the
// throughput experiments. The paper drives its measurements with back-to-back
// minimum-size (64-byte) TCP packets whose headers exercise the rule set;
// this package reproduces that: a seeded mix of rule-directed headers
// (sampled uniformly from a randomly chosen rule's 5-dimensional box, so the
// whole tree is exercised including deep, overlapping regions) and uniform
// random headers (which mostly fall through to default rules or no match).
package pktgen

import (
	"fmt"
	"math/rand"

	"repro/internal/rules"
)

// MinPacketBytes is the minimum Ethernet frame size used for throughput
// conversion: the paper reports Gbps for 64-byte TCP packets.
const MinPacketBytes = 64

// Config parameterizes trace generation.
type Config struct {
	// Count is the number of headers to generate.
	Count int
	// Seed makes generation deterministic.
	Seed int64
	// MatchFraction in [0,1] is the fraction of headers sampled from rule
	// boxes; the remainder is uniform random. The paper's traces are rule
	// set driven, so the default used by experiments is 0.9.
	MatchFraction float64
}

// DefaultMatchFraction is the rule-directed share used by the experiment
// drivers.
const DefaultMatchFraction = 0.9

// Trace is an ordered sequence of packet headers. For the throughput model
// only headers matter: every packet is a MinPacketBytes frame.
type Trace struct {
	Headers []rules.Header
}

// Len returns the number of packets in the trace.
func (t *Trace) Len() int { return len(t.Headers) }

// Bits returns the total wire size of the trace in bits, at the minimum
// frame size the paper uses for its Mbps numbers.
func (t *Trace) Bits() int64 {
	return int64(len(t.Headers)) * MinPacketBytes * 8
}

// Generate produces a trace exercising the rule set.
func Generate(rs *rules.RuleSet, cfg Config) (*Trace, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("pktgen: count must be positive, got %d", cfg.Count)
	}
	if cfg.MatchFraction < 0 || cfg.MatchFraction > 1 {
		return nil, fmt.Errorf("pktgen: match fraction %v out of [0,1]", cfg.MatchFraction)
	}
	if rs.Len() == 0 && cfg.MatchFraction > 0 {
		return nil, fmt.Errorf("pktgen: cannot direct headers at an empty rule set")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Headers: make([]rules.Header, cfg.Count)}
	for i := range t.Headers {
		if rng.Float64() < cfg.MatchFraction {
			r := &rs.Rules[rng.Intn(rs.Len())]
			t.Headers[i] = SampleRule(rng, r)
		} else {
			t.Headers[i] = RandomHeader(rng)
		}
	}
	return t, nil
}

// SampleRule draws a header uniformly from the rule's 5-dimensional box,
// guaranteeing r.Matches(header) (though a higher-priority overlapping rule
// may still win classification).
func SampleRule(rng *rand.Rand, r *rules.Rule) rules.Header {
	pick := func(s rules.Span) uint32 {
		return s.Lo + uint32(rng.Int63n(int64(s.Size())))
	}
	return rules.Header{
		SrcIP:   pick(r.Span(rules.DimSrcIP)),
		DstIP:   pick(r.Span(rules.DimDstIP)),
		SrcPort: uint16(pick(r.Span(rules.DimSrcPort))),
		DstPort: uint16(pick(r.Span(rules.DimDstPort))),
		Proto:   uint8(pick(r.Span(rules.DimProto))),
	}
}

// RandomHeader draws a uniform random header. Protocols are biased toward
// TCP/UDP/ICMP the way real traffic is, so uniform headers still interact
// with protocol-matching rules.
func RandomHeader(rng *rand.Rand) rules.Header {
	var proto uint8
	switch rng.Intn(10) {
	case 0:
		proto = uint8(rng.Intn(256))
	case 1:
		proto = rules.ProtoICMP
	case 2, 3:
		proto = rules.ProtoUDP
	default:
		proto = rules.ProtoTCP
	}
	return rules.Header{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Proto:   proto,
	}
}
