package flowcache

import (
	"testing"

	"repro/internal/rules"
)

// switchable is a slow path whose answers can be changed under the cache,
// standing in for a rule-set generation change.
type switchable struct {
	answer int
	calls  int
}

func (s *switchable) Classify(rules.Header) int {
	s.calls++
	return s.answer
}

func TestAdvanceEpochStalesEverything(t *testing.T) {
	slow := &switchable{answer: 7}
	cache, err := New(slow, 64)
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rules.ProtoTCP}
	for i := 0; i < 5; i++ {
		if got := cache.Classify(h); got != 7 {
			t.Fatalf("Classify = %d, want 7", got)
		}
	}
	if slow.calls != 1 {
		t.Fatalf("slow path called %d times before epoch bump, want 1", slow.calls)
	}

	// The rule this flow matched is deleted: the slow path now answers
	// differently. AdvanceEpoch must stop the cache from ever serving the
	// stale decision again.
	slow.answer = 3
	cache.AdvanceEpoch()
	if got := cache.Classify(h); got != 3 {
		t.Fatalf("Classify after AdvanceEpoch = %d, want the fresh answer 3", got)
	}
	if slow.calls != 2 {
		t.Fatalf("slow path called %d times, want exactly one re-lookup", slow.calls)
	}
	// The refreshed slot hits again at the new epoch.
	if got := cache.Classify(h); got != 3 || slow.calls != 2 {
		t.Fatalf("refreshed slot: got %d, slow calls %d", got, slow.calls)
	}
}

func TestAdvanceEpochStalesBatchPath(t *testing.T) {
	slow := &switchable{answer: 1}
	cache, err := New(slow, 64)
	if err != nil {
		t.Fatal(err)
	}
	hs := []rules.Header{
		{SrcIP: 1}, {SrcIP: 2}, {SrcIP: 3},
	}
	out := make([]int, len(hs))
	cache.ClassifyBatch(hs, out)
	cache.ClassifyBatch(hs, out)
	if slow.calls != 3 {
		t.Fatalf("slow calls = %d, want 3 (second batch all hits)", slow.calls)
	}
	slow.answer = 9
	cache.AdvanceEpoch()
	cache.ClassifyBatch(hs, out)
	for i, v := range out {
		if v != 9 {
			t.Fatalf("out[%d] = %d after epoch bump, want 9", i, v)
		}
	}
	if slow.calls != 6 {
		t.Fatalf("slow calls = %d, want 6 (whole batch re-missed)", slow.calls)
	}
}

func TestAdvanceEpochKeepsAllocationFreeSteadyState(t *testing.T) {
	slow := &switchable{}
	cache, err := New(slow, 128)
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]rules.Header, 64)
	for i := range hs {
		hs[i] = rules.Header{SrcIP: uint32(i)}
	}
	out := make([]int, len(hs))
	cache.ClassifyBatch(hs, out)
	allocs := testing.AllocsPerRun(50, func() {
		cache.AdvanceEpoch()
		cache.ClassifyBatch(hs, out)
	})
	if allocs != 0 {
		t.Errorf("epoch-bumped serving allocates %.1f/op, want 0", allocs)
	}
}
