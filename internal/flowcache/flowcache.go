// Package flowcache puts an exact-match flow cache in front of a
// classifier: the first packet of a flow takes the full lookup, subsequent
// packets hit a bounded LRU map keyed by the 5-tuple. This is the standard
// flow-level fast path on network processors (the paper's group explores
// it for deep inspection in the work cited as [15]); it composes with any
// classifier in this repository and never changes classification results —
// it only changes their cost.
//
// The cache is not safe for concurrent use; give each worker its own cache
// (per-thread caches are also what an ME implementation would do, in local
// memory).
package flowcache

import (
	"container/list"
	"fmt"

	"repro/internal/rules"
)

// Classifier is the slow path behind the cache.
type Classifier interface {
	Classify(h rules.Header) int
}

// Cache is a bounded LRU flow cache over a classifier.
type Cache struct {
	slow     Classifier
	capacity int
	entries  map[rules.Header]*list.Element
	order    *list.List // front = most recent

	hits, misses uint64
}

type entry struct {
	key   rules.Header
	match int
}

// New wraps the classifier with a cache of the given capacity (flows).
func New(slow Classifier, capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("flowcache: capacity must be >= 1, got %d", capacity)
	}
	return &Cache{
		slow:     slow,
		capacity: capacity,
		entries:  make(map[rules.Header]*list.Element, capacity),
		order:    list.New(),
	}, nil
}

// Classify returns exactly what the wrapped classifier would, consulting
// the cache first.
func (c *Cache) Classify(h rules.Header) int {
	if el, ok := c.entries[h]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*entry).match
	}
	c.misses++
	match := c.slow.Classify(h)
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
	}
	c.entries[h] = c.order.PushFront(&entry{key: h, match: match})
	return match
}

// Invalidate empties the cache; call it after the underlying rule set
// changes (e.g. on every update.Manager generation change).
func (c *Cache) Invalidate() {
	c.entries = make(map[rules.Header]*list.Element, c.capacity)
	c.order.Init()
}

// Len returns the number of cached flows.
func (c *Cache) Len() int { return c.order.Len() }

// Stats returns hit and miss counts since creation.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns the hit fraction (0 when nothing was classified).
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
