// Package flowcache puts an exact-match flow cache in front of a
// classifier: the first packet of a flow takes the full lookup, subsequent
// packets hit a bounded LRU map keyed by the 5-tuple. This is the standard
// flow-level fast path on network processors (the paper's group explores
// it for deep inspection in the work cited as [15]); it composes with any
// classifier in this repository and never changes classification results —
// it only changes their cost.
//
// The LRU is an index-linked list over a preallocated entry slab: prev and
// next are int32 indices into the slab rather than heap pointers, so the
// steady state performs no allocation per insert, no interface boxing, and
// no pointer chasing beyond the slab itself (the layout an ME would use in
// local memory). All allocation happens in New and during the first
// capacity misses.
//
// The cache is not safe for concurrent use; give each worker its own cache
// (per-thread caches are also what an ME implementation would do, in local
// memory).
package flowcache

import (
	"fmt"
	"math"

	"repro/internal/rules"
)

// Classifier is the slow path behind the cache.
type Classifier interface {
	Classify(h rules.Header) int
}

// BatchClassifier is the optional batched slow-path contract (mirrors
// engine.BatchClassifier; declared locally so flowcache keeps zero
// dependency on the engine). When the wrapped classifier implements it,
// ClassifyBatch forwards all of a batch's misses as one sub-batch.
type BatchClassifier interface {
	Classifier
	ClassifyBatch(hs []rules.Header, out []int)
}

// none marks an empty link or absent slot.
const none = int32(-1)

// entry is one slab slot: the cached flow, its match, and its position in
// the recency list (index links, not pointers).
type entry struct {
	key        rules.Header
	match      int
	epoch      uint64
	prev, next int32
}

// Cache is a bounded LRU flow cache over a classifier.
type Cache struct {
	slow     Classifier
	batch    BatchClassifier // slow, if it supports batching; else nil
	capacity int

	index      map[rules.Header]int32 // key -> slab slot
	slab       []entry                // preallocated, len == capacity
	head, tail int32                  // most/least recently used; none when empty
	used       int32                  // slab slots ever occupied (<= capacity)

	// epoch tags every cached entry; AdvanceEpoch bumps it, instantly
	// staling the whole cache in O(1). Entries from older epochs are
	// treated as misses and their slots refreshed in place.
	epoch uint64

	hits, misses uint64

	// Miss-forwarding scratch for ClassifyBatch, retained across calls so
	// the steady state allocates nothing. missIdx[k] is the batch position
	// of the k-th miss.
	missHs  []rules.Header
	missIdx []int32
	missOut []int
}

// MaxCapacity is the largest cache capacity New accepts. The recency
// list links slab slots with int32 indices (the whole point of the slab
// layout), so a capacity beyond MaxInt32 would silently truncate links;
// it is also ~80 GB of slab, far past "absurd" for a per-shard cache.
const MaxCapacity = math.MaxInt32

// CapacityError reports a cache capacity outside [1, MaxCapacity]. It is
// a typed error so construction sites (the engine's per-shard cache
// setup) can tell a misconfigured capacity from an environmental failure.
type CapacityError struct {
	// Capacity is the rejected value.
	Capacity int
}

func (e *CapacityError) Error() string {
	return fmt.Sprintf("flowcache: capacity %d outside [1, %d]", e.Capacity, int(MaxCapacity))
}

// New wraps the classifier with a cache of the given capacity (flows).
// Capacities outside [1, MaxCapacity] are rejected with a *CapacityError:
// the slab's int32 recency links cannot address more than MaxInt32 slots.
func New(slow Classifier, capacity int) (*Cache, error) {
	if capacity < 1 || int64(capacity) > int64(MaxCapacity) {
		return nil, &CapacityError{Capacity: capacity}
	}
	c := &Cache{
		slow:     slow,
		capacity: capacity,
		index:    make(map[rules.Header]int32, capacity),
		slab:     make([]entry, capacity),
		head:     none,
		tail:     none,
	}
	c.batch, _ = slow.(BatchClassifier)
	return c, nil
}

// Classify returns exactly what the wrapped classifier would, consulting
// the cache first.
func (c *Cache) Classify(h rules.Header) int {
	if i, ok := c.index[h]; ok && c.slab[i].epoch == c.epoch {
		c.hits++
		c.moveToFront(i)
		return c.slab[i].match
	}
	c.misses++
	match := c.slow.Classify(h)
	c.insert(h, match)
	return match
}

// ClassifyBatch classifies hs[i] into out[i] (the engine's
// BatchClassifier contract; out must be at least as long as hs). Hits are
// served in a first pass; all misses are forwarded to the slow path as one
// sub-batch, so a batched slow path amortizes its work across every cold
// flow in the batch. Results are identical to per-packet Classify calls;
// the only observable difference is accounting — a flow missed twice
// within one batch counts two misses here, where sequential Classify
// would count the second occurrence as a hit.
func (c *Cache) ClassifyBatch(hs []rules.Header, out []int) {
	out = out[:len(hs)]
	c.missHs = c.missHs[:0]
	c.missIdx = c.missIdx[:0]
	for i, h := range hs {
		if j, ok := c.index[h]; ok && c.slab[j].epoch == c.epoch {
			c.hits++
			c.moveToFront(j)
			out[i] = c.slab[j].match
			continue
		}
		c.misses++
		c.missHs = append(c.missHs, h)
		c.missIdx = append(c.missIdx, int32(i))
	}
	if len(c.missHs) == 0 {
		return
	}
	if cap(c.missOut) < len(c.missHs) {
		c.missOut = make([]int, len(c.missHs))
	}
	mo := c.missOut[:len(c.missHs)]
	if c.batch != nil {
		c.batch.ClassifyBatch(c.missHs, mo)
	} else {
		for k, h := range c.missHs {
			mo[k] = c.slow.Classify(h)
		}
	}
	for k, i := range c.missIdx {
		out[i] = mo[k]
		c.insert(c.missHs[k], mo[k])
	}
}

// insert caches h's match, evicting the LRU entry at capacity. A key that
// is already present (a flow missed more than once in a single batch, or
// a flow staled by AdvanceEpoch) has its slot refreshed — match and epoch
// — instead of duplicated.
func (c *Cache) insert(h rules.Header, match int) {
	if i, ok := c.index[h]; ok {
		c.slab[i].match = match
		c.slab[i].epoch = c.epoch
		c.moveToFront(i)
		return
	}
	var i int32
	if int(c.used) < c.capacity {
		i = c.used
		c.used++
	} else {
		// Reuse the LRU slot.
		i = c.tail
		delete(c.index, c.slab[i].key)
		c.unlink(i)
	}
	c.slab[i] = entry{key: h, match: match, epoch: c.epoch, prev: none, next: none}
	c.pushFront(i)
	c.index[h] = i
}

// unlink removes slot i from the recency list.
func (c *Cache) unlink(i int32) {
	e := &c.slab[i]
	if e.prev != none {
		c.slab[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next != none {
		c.slab[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = none, none
}

// pushFront links slot i as the most recently used.
func (c *Cache) pushFront(i int32) {
	e := &c.slab[i]
	e.prev, e.next = none, c.head
	if c.head != none {
		c.slab[c.head].prev = i
	}
	c.head = i
	if c.tail == none {
		c.tail = i
	}
}

// moveToFront refreshes slot i's recency.
func (c *Cache) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

// Invalidate empties the cache; call it after the underlying rule set
// changes. The slab and index are retained, so refilling allocates
// nothing. Cost is O(capacity) (the index clear); serving loops that
// invalidate at churn rates should use AdvanceEpoch instead.
func (c *Cache) Invalidate() {
	clear(c.index)
	c.head, c.tail, c.used = none, none, 0
}

// AdvanceEpoch stales every cached entry in O(1): entries keep their
// slots but no longer hit, so the very next packet of each flow re-takes
// the slow path and refreshes the slot in place. This is the invalidation
// the engine's shards use on generation changes — a delta-layer delete
// publishes a new generation, the shard bumps the epoch, and a cached
// decision for the deleted rule can never be served again, without paying
// an O(capacity) clear per churn event.
//
// The epoch counter is a uint64, so wrapping takes 2^64 advances — but a
// wrap would be catastrophic rather than merely unlikely: a slot last
// refreshed at epoch E would satisfy the equality gate again when the
// counter returns to E, serving a decision staled 2^64 invalidations ago
// as fresh. The once-per-wrap O(capacity) Invalidate makes every pre-wrap
// slot unreachable (the index is cleared), so correctness never rests on
// the counter not wrapping.
func (c *Cache) AdvanceEpoch() {
	c.epoch++
	if c.epoch == 0 {
		c.Invalidate()
	}
}

// Len returns the number of cached flows (including epoch-staled entries
// whose slots have not been refreshed yet).
func (c *Cache) Len() int { return len(c.index) }

// Stats returns hit and miss counts since creation.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns the hit fraction (0 when nothing was classified).
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
