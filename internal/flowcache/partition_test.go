package flowcache

import (
	"testing"

	"repro/internal/rules"
)

func hdr(src uint32) rules.Header {
	return rules.Header{SrcIP: src, DstIP: 1, SrcPort: 2, DstPort: 3, Proto: rules.ProtoTCP}
}

// TestPartitionIsolation: identical 5-tuples under different tenants must
// never share entries, and one tenant's epoch advance must not stale
// another's partition.
func TestPartitionIsolation(t *testing.T) {
	p, err := NewPartitioned(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	sa := &switchable{answer: 1}
	sb := &switchable{answer: 2}
	h := hdr(9)

	ca, _ := p.Partition(1, sa)
	cb, _ := p.Partition(2, sb)
	if got := ca.Classify(h); got != 1 {
		t.Fatalf("tenant 1 Classify = %d, want 1", got)
	}
	if got := cb.Classify(h); got != 2 {
		t.Fatalf("tenant 2 Classify = %d, want 2 (entry leaked across tenants)", got)
	}

	// Tenant 1's rules change; only tenant 1's partition goes stale.
	sa.answer = 11
	ca.AdvanceEpoch()
	sbCalls := sb.calls
	if got := ca.Classify(h); got != 11 {
		t.Fatalf("tenant 1 after own epoch advance = %d, want 11", got)
	}
	if got := cb.Classify(h); got != 2 {
		t.Fatalf("tenant 2 = %d, want 2", got)
	}
	if sb.calls != sbCalls {
		t.Fatalf("tenant 2 slow path re-consulted after tenant 1's invalidation")
	}
}

// TestPartitionEviction: at the tenant bound, the least recently served
// partition is reclaimed, OnEvict fires with its ID, and the evictee
// comes back cold.
func TestPartitionEviction(t *testing.T) {
	p, err := NewPartitioned(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	var evicted []uint32
	p.OnEvict = func(id uint32) { evicted = append(evicted, id) }
	slow := &switchable{answer: 7}

	c1, _ := p.Partition(1, slow)
	c1.Classify(hdr(1))
	p.Partition(2, slow)
	p.Partition(1, slow) // bump 1: tenant 2 is now oldest

	if _, err := p.Partition(3, slow); err != nil {
		t.Fatal(err)
	}
	if p.Tenants() != 2 || p.Evictions() != 1 {
		t.Fatalf("tenants=%d evictions=%d, want 2/1", p.Tenants(), p.Evictions())
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}

	// Tenant 1 survived with its working set intact.
	calls := slow.calls
	c1b, _ := p.Partition(1, slow)
	if c1b.Classify(hdr(1)); slow.calls != calls {
		t.Fatal("survivor's cached flow re-took the slow path")
	}

	// The evictee rebuilds cold (and evicts the now-oldest tenant 3).
	c2, _ := p.Partition(2, slow)
	if c2.Len() != 0 {
		t.Fatalf("re-admitted evictee Len = %d, want 0", c2.Len())
	}
}

// TestPartitionDrop: Drop discards without the eviction callback.
func TestPartitionDrop(t *testing.T) {
	p, err := NewPartitioned(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	p.OnEvict = func(uint32) { fired = true }
	slow := &switchable{answer: 3}
	p.Partition(5, slow)
	p.Drop(5)
	if p.Tenants() != 0 || fired {
		t.Fatalf("tenants=%d fired=%v after Drop, want 0/false", p.Tenants(), fired)
	}
}

// TestPartitionedRejectsBadBounds mirrors New's capacity validation.
func TestPartitionedRejectsBadBounds(t *testing.T) {
	if _, err := NewPartitioned(0, 4); err == nil {
		t.Error("perTenant 0 accepted")
	}
	if _, err := NewPartitioned(16, 0); err == nil {
		t.Error("maxTenants 0 accepted")
	}
}

// TestPartitionSteadyStateAllocs: the resident-tenant Partition call is
// on the per-batch hot path and must not allocate.
func TestPartitionSteadyStateAllocs(t *testing.T) {
	p, err := NewPartitioned(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	slow := &switchable{answer: 1}
	p.Partition(1, slow)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := p.Partition(1, slow); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Partition steady state allocates %.1f/op, want 0", allocs)
	}
}
