package flowcache

import (
	"math/rand"
	"testing"

	"repro/internal/expcuts"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// countingClassifier counts slow-path invocations.
type countingClassifier struct {
	inner interface {
		Classify(h rules.Header) int
	}
	calls int
}

func (c *countingClassifier) Classify(h rules.Header) int {
	c.calls++
	return c.inner.Classify(h)
}

func fixtures(t *testing.T) (*rules.RuleSet, *countingClassifier) {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 120, Seed: 601})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return rs, &countingClassifier{inner: tree}
}

func TestResultsUnchanged(t *testing.T) {
	rs, slow := fixtures(t)
	cache, err := New(slow, 256)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 3000, Seed: 602, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Repeat each header to create flows.
	for rep := 0; rep < 3; rep++ {
		for _, h := range tr.Headers[:500] {
			if got, want := cache.Classify(h), rs.Match(h); got != want {
				t.Fatalf("cached Classify(%v) = %d, oracle %d", h, got, want)
			}
		}
	}
}

func TestCacheShortCircuitsRepeats(t *testing.T) {
	_, slow := fixtures(t)
	cache, err := New(slow, 64)
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rules.ProtoTCP}
	for i := 0; i < 100; i++ {
		cache.Classify(h)
	}
	if slow.calls != 1 {
		t.Errorf("slow path called %d times, want 1", slow.calls)
	}
	hits, misses := cache.Stats()
	if hits != 99 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
	if cache.HitRate() < 0.98 {
		t.Errorf("hit rate = %v", cache.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	_, slow := fixtures(t)
	cache, err := New(slow, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := rules.Header{SrcIP: 1}
	b := rules.Header{SrcIP: 2}
	c := rules.Header{SrcIP: 3}
	cache.Classify(a) // cache: a
	cache.Classify(b) // cache: b a
	cache.Classify(a) // cache: a b (a refreshed)
	cache.Classify(c) // evicts b -> cache: c a
	if cache.Len() != 2 {
		t.Fatalf("Len = %d", cache.Len())
	}
	calls := slow.calls
	cache.Classify(a) // hit
	if slow.calls != calls {
		t.Error("a should still be cached")
	}
	cache.Classify(b) // miss (evicted)
	if slow.calls != calls+1 {
		t.Error("b should have been evicted")
	}
}

func TestInvalidate(t *testing.T) {
	_, slow := fixtures(t)
	cache, err := New(slow, 16)
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 9}
	cache.Classify(h)
	cache.Invalidate()
	if cache.Len() != 0 {
		t.Errorf("Len = %d after Invalidate", cache.Len())
	}
	calls := slow.calls
	cache.Classify(h)
	if slow.calls != calls+1 {
		t.Error("invalidated entry served from cache")
	}
}

func TestZipfTrafficHitRate(t *testing.T) {
	// Flow-level locality: a skewed flow popularity distribution must
	// produce a high hit rate with a modest cache — the premise of
	// flow-level processing on NPs.
	rs, slow := fixtures(t)
	cache, err := New(slow, 512)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 400, Seed: 603, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	flows := tr.Headers
	rng := rand.New(rand.NewSource(604))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(flows)-1))
	for i := 0; i < 50000; i++ {
		cache.Classify(flows[zipf.Uint64()])
	}
	if rate := cache.HitRate(); rate < 0.9 {
		t.Errorf("hit rate %.2f under Zipf traffic, want >= 0.9", rate)
	}
}

func TestCapacityValidation(t *testing.T) {
	_, slow := fixtures(t)
	if _, err := New(slow, 0); err == nil {
		t.Error("capacity 0 should fail")
	}
}
