package flowcache

import (
	"errors"
	"math/rand"
	"runtime/debug"
	"testing"

	"repro/internal/expcuts"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

// countingClassifier counts slow-path invocations.
type countingClassifier struct {
	inner interface {
		Classify(h rules.Header) int
	}
	calls int
}

func (c *countingClassifier) Classify(h rules.Header) int {
	c.calls++
	return c.inner.Classify(h)
}

func fixtures(t *testing.T) (*rules.RuleSet, *countingClassifier) {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 120, Seed: 601})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := expcuts.New(rs, expcuts.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return rs, &countingClassifier{inner: tree}
}

func TestResultsUnchanged(t *testing.T) {
	rs, slow := fixtures(t)
	cache, err := New(slow, 256)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 3000, Seed: 602, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Repeat each header to create flows.
	for rep := 0; rep < 3; rep++ {
		for _, h := range tr.Headers[:500] {
			if got, want := cache.Classify(h), rs.Match(h); got != want {
				t.Fatalf("cached Classify(%v) = %d, oracle %d", h, got, want)
			}
		}
	}
}

func TestCacheShortCircuitsRepeats(t *testing.T) {
	_, slow := fixtures(t)
	cache, err := New(slow, 64)
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rules.ProtoTCP}
	for i := 0; i < 100; i++ {
		cache.Classify(h)
	}
	if slow.calls != 1 {
		t.Errorf("slow path called %d times, want 1", slow.calls)
	}
	hits, misses := cache.Stats()
	if hits != 99 || misses != 1 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
	if cache.HitRate() < 0.98 {
		t.Errorf("hit rate = %v", cache.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	_, slow := fixtures(t)
	cache, err := New(slow, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := rules.Header{SrcIP: 1}
	b := rules.Header{SrcIP: 2}
	c := rules.Header{SrcIP: 3}
	cache.Classify(a) // cache: a
	cache.Classify(b) // cache: b a
	cache.Classify(a) // cache: a b (a refreshed)
	cache.Classify(c) // evicts b -> cache: c a
	if cache.Len() != 2 {
		t.Fatalf("Len = %d", cache.Len())
	}
	calls := slow.calls
	cache.Classify(a) // hit
	if slow.calls != calls {
		t.Error("a should still be cached")
	}
	cache.Classify(b) // miss (evicted)
	if slow.calls != calls+1 {
		t.Error("b should have been evicted")
	}
}

func TestInvalidate(t *testing.T) {
	_, slow := fixtures(t)
	cache, err := New(slow, 16)
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 9}
	cache.Classify(h)
	cache.Invalidate()
	if cache.Len() != 0 {
		t.Errorf("Len = %d after Invalidate", cache.Len())
	}
	calls := slow.calls
	cache.Classify(h)
	if slow.calls != calls+1 {
		t.Error("invalidated entry served from cache")
	}
}

func TestZipfTrafficHitRate(t *testing.T) {
	// Flow-level locality: a skewed flow popularity distribution must
	// produce a high hit rate with a modest cache — the premise of
	// flow-level processing on NPs.
	rs, slow := fixtures(t)
	cache, err := New(slow, 512)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 400, Seed: 603, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	flows := tr.Headers
	rng := rand.New(rand.NewSource(604))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(flows)-1))
	for i := 0; i < 50000; i++ {
		cache.Classify(flows[zipf.Uint64()])
	}
	if rate := cache.HitRate(); rate < 0.9 {
		t.Errorf("hit rate %.2f under Zipf traffic, want >= 0.9", rate)
	}
}

func TestCapacityValidation(t *testing.T) {
	_, slow := fixtures(t)
	if _, err := New(slow, 0); err == nil {
		t.Error("capacity 0 should fail")
	}
}

// TestCapacityOverflowRejected pins the int32 slab-link bound: a
// capacity beyond MaxCapacity would silently truncate the recency
// links (and try to allocate an absurd slab), so New must refuse it
// with a typed *CapacityError instead of constructing a corrupt cache.
func TestCapacityOverflowRejected(t *testing.T) {
	_, slow := fixtures(t)
	over := MaxCapacity // runtime increment so the literal compiles on any int width
	over++
	maxInt := int(^uint(0) >> 1)
	for _, capacity := range []int{-1, 0, over, maxInt} {
		_, err := New(slow, capacity)
		if err == nil {
			t.Fatalf("capacity %d accepted, want *CapacityError", capacity)
		}
		var ce *CapacityError
		if !errors.As(err, &ce) {
			t.Fatalf("capacity %d: error %T (%v), want *CapacityError", capacity, err, err)
		}
		if ce.Capacity != capacity {
			t.Errorf("CapacityError.Capacity = %d, want %d", ce.Capacity, capacity)
		}
	}
	// The boundary value MaxCapacity itself is legal; constructing that
	// slab would OOM the test host, so the first rejected value above
	// (MaxCapacity+1) is what pins the upper bound off-by-one.
}

// countingBatchClassifier also implements ClassifyBatch, counting
// sub-batch forwards.
type countingBatchClassifier struct {
	countingClassifier
	batchCalls   int
	batchPackets int
}

func (c *countingBatchClassifier) ClassifyBatch(hs []rules.Header, out []int) {
	c.batchCalls++
	c.batchPackets += len(hs)
	for i, h := range hs {
		out[i] = c.inner.Classify(h)
	}
}

func TestClassifyBatchMatchesSequential(t *testing.T) {
	rs, slowA := fixtures(t)
	_, slowB := fixtures(t)
	seq, err := New(slowA, 128)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := New(slowB, 128)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 600, Seed: 605, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Repeat the trace so both caches see hits, misses and evictions.
	hs := append(append([]rules.Header{}, tr.Headers...), tr.Headers[:300]...)
	out := make([]int, 64)
	for lo := 0; lo < len(hs); lo += 64 {
		hi := min(lo+64, len(hs))
		bat.ClassifyBatch(hs[lo:hi], out[:hi-lo])
		for k, h := range hs[lo:hi] {
			if want := seq.Classify(h); out[k] != want {
				t.Fatalf("packet %d: batch %d, sequential %d", lo+k, out[k], want)
			}
		}
	}
	if bat.Len() != seq.Len() {
		t.Errorf("cache sizes diverged: batch %d, sequential %d", bat.Len(), seq.Len())
	}
}

// TestBatchForwardsMissesAsOneSubBatch pins the tentpole behavior: all of
// a batch's misses reach a batched slow path in a single ClassifyBatch
// call, not one call per miss.
func TestBatchForwardsMissesAsOneSubBatch(t *testing.T) {
	rs, counting := fixtures(t)
	slow := &countingBatchClassifier{countingClassifier: *counting}
	cache, err := New(slow, 256)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 64, Seed: 606, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 64)
	cache.ClassifyBatch(tr.Headers, out)
	if slow.batchCalls != 1 {
		t.Errorf("cold batch forwarded %d sub-batches, want 1", slow.batchCalls)
	}
	if slow.calls != 0 {
		t.Errorf("cold batch used per-packet slow path %d times, want 0", slow.calls)
	}
	// All flows cached now: no slow-path traffic at all.
	cache.ClassifyBatch(tr.Headers, out)
	if slow.batchCalls != 1 || slow.calls != 0 {
		t.Errorf("warm batch hit the slow path (batch calls %d, scalar calls %d)", slow.batchCalls, slow.calls)
	}
	hits, misses := cache.Stats()
	if misses != uint64(slow.batchPackets) {
		t.Errorf("misses %d != packets forwarded %d", misses, slow.batchPackets)
	}
	if hits != 64 {
		t.Errorf("hits = %d, want 64", hits)
	}
}

// TestBatchDuplicateMisses covers a flow appearing more than once in a
// single cold batch: every occurrence must get the right answer and the
// cache must end up with exactly one entry for it.
func TestBatchDuplicateMisses(t *testing.T) {
	_, slow := fixtures(t)
	cache, err := New(slow, 16)
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rules.ProtoTCP}
	hs := []rules.Header{h, h, h, h}
	out := make([]int, len(hs))
	cache.ClassifyBatch(hs, out)
	want := slow.inner.Classify(h)
	for i, got := range out {
		if got != want {
			t.Errorf("occurrence %d: got %d, want %d", i, got, want)
		}
	}
	if cache.Len() != 1 {
		t.Errorf("Len = %d, want 1", cache.Len())
	}
}

// TestBatchZeroAllocWarm is the flow cache's allocation regression gate:
// once every flow in the batch is cached, ClassifyBatch allocates nothing.
func TestBatchZeroAllocWarm(t *testing.T) {
	rs, slow := fixtures(t)
	cache, err := New(slow, 256)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: 64, Seed: 607, MatchFraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 64)
	cache.ClassifyBatch(tr.Headers, out) // warm: every flow cached

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := testing.AllocsPerRun(100, func() {
		cache.ClassifyBatch(tr.Headers, out)
	}); n != 0 {
		t.Fatalf("warm ClassifyBatch allocates %.2f times per op, want 0", n)
	}
}

// TestInsertZeroAllocAfterWarmup: evicting inserts reuse slab slots, so
// even a 100%-miss workload stops allocating once the slab is full (the
// map's bucket array is the one exception Go's map can regrow; a fixed
// key universe avoids it here).
func TestInsertZeroAllocAfterWarmup(t *testing.T) {
	_, slow := fixtures(t)
	cache, err := New(slow, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 32 distinct flows through an 8-entry cache: every access evicts.
	flows := make([]rules.Header, 32)
	for i := range flows {
		flows[i] = rules.Header{SrcIP: uint32(i), SrcPort: 80, Proto: rules.ProtoTCP}
	}
	for _, h := range flows {
		cache.Classify(h)
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		cache.Classify(flows[i%len(flows)])
		i++
	}); n != 0 {
		t.Fatalf("evicting Classify allocates %.2f times per op, want 0", n)
	}
}
