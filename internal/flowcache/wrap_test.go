package flowcache

import (
	"math"
	"testing"

	"repro/internal/rules"
)

// TestAdvanceEpochWraparound pins the wrap-safety of the epoch gate.
// Entries are compared to the current epoch with equality, so after the
// uint64 counter wraps back to a value an old slot was tagged with, that
// slot would look fresh again and serve a decision staled 2^64
// invalidations earlier. The fix invalidates the whole cache once per
// wrap; this test fast-forwards the counter to just below the wrap point
// and crosses it.
func TestAdvanceEpochWraparound(t *testing.T) {
	slow := &switchable{answer: 1}
	cache, err := New(slow, 64)
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: rules.ProtoTCP}

	// Cache h at epoch 0, then stale it once the normal way.
	if got := cache.Classify(h); got != 1 {
		t.Fatalf("Classify = %d, want 1", got)
	}
	cache.AdvanceEpoch()

	// Fast-forward to the last epoch before wraparound and cross it. The
	// entry cached above is tagged epoch 0 — exactly the value the counter
	// wraps back to.
	cache.epoch = math.MaxUint64
	cache.AdvanceEpoch()
	if cache.epoch != 0 {
		t.Fatalf("epoch after wrap = %d, want 0", cache.epoch)
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("Len after wrap = %d, want 0 (wrap must invalidate)", n)
	}

	// The rule set "changed" 2^64 invalidations ago; the stale slot must
	// not resurface as a hit.
	slow.answer = 2
	if got := cache.Classify(h); got != 2 {
		t.Fatalf("Classify after epoch wrap = %d, want 2 (stale pre-wrap entry served)", got)
	}
}

// TestAdvanceEpochNoSpuriousInvalidate confirms the wrap guard does not
// fire on ordinary advances: staled slots keep their index entries so the
// next packet of each flow refreshes its slot in place (no O(capacity)
// clear per churn event).
func TestAdvanceEpochNoSpuriousInvalidate(t *testing.T) {
	slow := &switchable{answer: 1}
	cache, err := New(slow, 64)
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6, Proto: rules.ProtoUDP}
	cache.Classify(h)
	cache.AdvanceEpoch()
	if n := cache.Len(); n != 1 {
		t.Fatalf("Len after ordinary advance = %d, want 1 (slot retained for in-place refresh)", n)
	}
}
