// Per-tenant flow-cache partitioning. A multi-tenant shard loop cannot
// share one Cache across tenants: the key is the 5-tuple alone, so two
// tenants whose flows collide would serve each other's matches, and one
// tenant's generation change would stale every tenant's entries. A
// Partitioned hands each tenant its own slab-backed Cache — its own
// index, its own recency list, its own epoch — so epoch-tagged
// invalidation is scoped to exactly the tenant whose rules changed, and
// a hostile tenant thrashing its partition cannot evict a byte of a
// well-behaved neighbour's working set.
//
// Partition count is bounded (maxTenants): when a new tenant arrives at
// the bound, the least recently *served* tenant's partition is
// reclaimed — flow caches are pure accelerators, so reclaiming one
// costs the victim cold misses, never correctness. Like Cache itself, a
// Partitioned is single-goroutine (one per shard).
package flowcache

// part is one tenant's cache plus its recency stamp. lastUse is a logical
// clock bumped on every Partition call, not wall time — cheap, and
// monotonic regardless of timer resolution.
type part struct {
	cache   *Cache
	lastUse uint64
}

// Partitioned is a bounded set of per-tenant flow caches.
type Partitioned struct {
	perTenant  int // capacity (flows) of each tenant's cache
	maxTenants int
	parts      map[uint32]*part
	clock      uint64
	evictions  uint64

	// OnEvict, when non-nil, is called with the tenant ID whose partition
	// was reclaimed to make room (not on explicit Drop). The engine uses
	// it to surface tenant-evicted events without flowcache importing obs.
	OnEvict func(tenant uint32)
}

// NewPartitioned returns a partition set giving each of up to maxTenants
// tenants a perTenant-flow cache. Both bounds must be positive;
// perTenant is validated against the same limits as New.
func NewPartitioned(perTenant, maxTenants int) (*Partitioned, error) {
	if perTenant < 1 || int64(perTenant) > int64(MaxCapacity) {
		return nil, &CapacityError{Capacity: perTenant}
	}
	if maxTenants < 1 {
		return nil, &CapacityError{Capacity: maxTenants}
	}
	return &Partitioned{
		perTenant:  perTenant,
		maxTenants: maxTenants,
		parts:      make(map[uint32]*part, maxTenants),
	}, nil
}

// Partition returns the tenant's cache, creating it over slow on first
// use (or after an eviction). The call bumps the tenant's recency, so
// calling it once per batch keeps partition eviction aligned with which
// tenants are actually serving traffic. The returned cache is only valid
// until the next Partition call that might evict — use it for one batch,
// re-resolve for the next.
//
// The steady state (tenant already resident) is one map lookup and a
// stamp: 0 allocs, safe for the per-batch hot path.
func (p *Partitioned) Partition(tenant uint32, slow Classifier) (*Cache, error) {
	p.clock++
	if pt, ok := p.parts[tenant]; ok {
		pt.lastUse = p.clock
		return pt.cache, nil
	}
	if len(p.parts) >= p.maxTenants {
		p.evictOldest()
	}
	c, err := New(slow, p.perTenant)
	if err != nil {
		return nil, err
	}
	p.parts[tenant] = &part{cache: c, lastUse: p.clock}
	return c, nil
}

// evictOldest reclaims the least recently served tenant's partition.
func (p *Partitioned) evictOldest() {
	var victim uint32
	var oldest uint64
	first := true
	for id, pt := range p.parts {
		if first || pt.lastUse < oldest {
			victim, oldest, first = id, pt.lastUse, false
		}
	}
	delete(p.parts, victim)
	p.evictions++
	if p.OnEvict != nil {
		p.OnEvict(victim)
	}
}

// Drop discards the tenant's partition (no OnEvict callback). Call it
// when the tenant is removed from the registry, or when its lane was
// rebound to a different manager and the slow-path pointer inside the
// cached partition would otherwise go stale.
func (p *Partitioned) Drop(tenant uint32) {
	delete(p.parts, tenant)
}

// Tenants returns the number of resident partitions.
func (p *Partitioned) Tenants() int { return len(p.parts) }

// Evictions returns how many partitions were reclaimed to make room.
func (p *Partitioned) Evictions() uint64 { return p.evictions }

// Stats sums hits and misses across resident partitions. Evicted
// partitions take their counts with them; treat the totals as a floor.
func (p *Partitioned) Stats() (hits, misses uint64) {
	for _, pt := range p.parts {
		h, m := pt.cache.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}
