// Package hicuts implements Hierarchical Intelligent Cuttings (Gupta &
// McKeown, Hot Interconnects 1999), the field-dependent decision-tree
// baseline the paper builds ExpCuts from. HiCuts preprocesses the rule set
// into a decision tree: each internal node cuts its box into equal-width
// cells along one heuristically chosen dimension, and each leaf holds at
// most binth rules that are linearly searched.
//
// The two HiCuts properties the paper criticizes — variable tree depth
// (implicit worst-case search time) and up-to-binth 6-word rule reads per
// leaf — fall directly out of this construction and are visible in the
// serialized access programs.
//
// All boxes are power-of-two aligned (the root is the full domain and every
// cut divides a box into a power-of-two number of equal cells), so a child
// index is computed box-independently as (value >> log2(cellWidth)) &
// (cells-1). Sibling cells whose rule lists have identical cell-relative
// geometry share one child node, which is the pointer aggregation of the
// paper's Figure 2 in a form that is provably safe.
package hicuts

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/buildgov"
	"repro/internal/memlayout"
	"repro/internal/rules"
)

// HardMaxDepth is the recursion ceiling enforced independently of the
// configured MaxDepth. Every cut halves at least one dimension of a box,
// so a correct build over the 104-bit space can never recurse deeper than
// rules.KeyBits levels; crossing this bound means a degenerate rule set
// or configuration has defeated the leaf conditions, and the build
// returns ErrDepthExceeded instead of growing the stack without bound.
const HardMaxDepth = rules.KeyBits

// ErrDepthExceeded reports a build that recursed past HardMaxDepth.
var ErrDepthExceeded = errors.New("hicuts: recursion exceeded hard depth limit")

// Config parameterizes tree construction.
type Config struct {
	// Binth is the leaf threshold: nodes with at most Binth rules become
	// leaves. The paper's experiments use 8.
	Binth int
	// SpFac is the space-measure factor bounding cut fan-out: the number
	// of cuts at a node is grown while
	// Σ(child rule counts) + cuts <= SpFac × (rules at node).
	SpFac float64
	// MaxCuts caps the number of cuts at one node.
	MaxCuts int
	// MaxDepth is a safety cap on tree depth.
	MaxDepth int
	// PruneCovered enables the rule-overlap elimination refinement: once
	// a rule fully covers a node's box, lower-priority rules are dropped
	// there. The paper's HiCuts baseline does plain binth-bounded leaves,
	// so this defaults to off; it is required for small binth values
	// (binth <= 2), where the unpruned tree explodes.
	PruneCovered bool
	// Channels is the number of SRAM channels the serialized tree is
	// spread across (1..4).
	Channels int
	// Headroom weights the channel allocation (defaults to uniform).
	Headroom memlayout.Headroom
	// BuildWorkers fans subtree construction out over a bounded worker
	// pool: the root's cells are statically partitioned into contiguous
	// chunks, one builder goroutine per chunk, all charging the same
	// build governor. 0 or 1 builds sequentially (the default). Parallel
	// builds are deterministic for a fixed worker count and classify
	// identically; sibling aggregation is scoped per chunk, so a parallel
	// tree may share fewer nodes.
	BuildWorkers int
}

// DefaultConfig matches the paper's HiCuts configuration: binth = 8,
// space factor 4, four SRAM channels.
func DefaultConfig() Config {
	return Config{
		Binth:    8,
		SpFac:    4.0,
		MaxCuts:  64,
		MaxDepth: 48,
		Channels: memlayout.NumChannels,
		Headroom: memlayout.UniformHeadroom,
	}
}

func (c *Config) fillDefaults() error {
	d := DefaultConfig()
	if c.Binth == 0 {
		c.Binth = d.Binth
	}
	if c.SpFac == 0 {
		c.SpFac = d.SpFac
	}
	if c.MaxCuts == 0 {
		c.MaxCuts = d.MaxCuts
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = d.MaxDepth
	}
	if c.Channels == 0 {
		c.Channels = d.Channels
	}
	if c.Headroom == (memlayout.Headroom{}) {
		c.Headroom = d.Headroom
	}
	if c.Binth < 1 {
		return fmt.Errorf("hicuts: binth must be >= 1, got %d", c.Binth)
	}
	if c.SpFac < 1 {
		return fmt.Errorf("hicuts: spfac must be >= 1, got %v", c.SpFac)
	}
	if c.MaxCuts < 2 || bits.OnesCount(uint(c.MaxCuts)) != 1 {
		return fmt.Errorf("hicuts: maxcuts must be a power of two >= 2, got %d", c.MaxCuts)
	}
	if c.Channels < 1 || c.Channels > memlayout.NumChannels {
		return fmt.Errorf("hicuts: channels %d out of [1,%d]", c.Channels, memlayout.NumChannels)
	}
	if c.BuildWorkers < 0 {
		return fmt.Errorf("hicuts: build workers %d must be >= 0", c.BuildWorkers)
	}
	return nil
}

// node is one decision-tree node.
type node struct {
	depth int

	// Internal node fields.
	dim      rules.Dim
	log2cw   uint    // log2 of cell width along dim
	log2nc   uint    // log2 of number of cells
	children []*node // len 1<<log2nc; aggregated siblings share pointers

	// Leaf fields.
	leaf    bool
	ruleIdx []int // rules to linearly search, priority order

	// Serialization bookkeeping.
	addr    uint32
	channel uint8
	placed  bool
}

// BuildStats reports tree shape and cost metrics.
type BuildStats struct {
	// Nodes and Leaves count unique tree nodes (shared children counted
	// once).
	Nodes, Leaves int
	// MaxDepth is the deepest leaf.
	MaxDepth int
	// MaxLeafRules is the largest leaf rule list (≤ binth unless a leaf
	// was forced by the depth cap or inseparable rules).
	MaxLeafRules int
	// WorstCaseAccesses bounds SRAM commands per lookup: two per tree
	// level plus one per leaf rule.
	WorstCaseAccesses int
	// MemoryWords is the serialized SRAM footprint in 32-bit words.
	MemoryWords int
}

// Tree is a built HiCuts classifier.
type Tree struct {
	cfg   Config
	rs    *rules.RuleSet
	gov   *buildgov.Governor
	root  *node
	stats BuildStats

	image    *memlayout.Image
	rootPtr  uint32
	ruleCh   uint8
	ruleBase uint32
}

// hbuilder is the construction state of one build goroutine: each worker
// of a parallel build gets its own, so the chooseDim scratch map is never
// shared, while the governor on the Tree is (it is concurrency-safe and
// bounds the build's total consumption).
type hbuilder struct {
	t *Tree
	// dimSeen is chooseDim's distinct-projection scratch, hoisted here so
	// the build allocates it once instead of once per dimension per node.
	dimSeen map[rules.Span]bool
}

// New builds a HiCuts tree over the rule set and serializes it.
func New(rs *rules.RuleSet, cfg Config) (*Tree, error) {
	return NewCtx(context.Background(), rs, cfg, nil)
}

// NewCtx is New under governance: every recursion step checks ctx and
// charges nodes and estimated bytes against budget (nil = ctx only), so
// an adversarial rule set aborts the build with a typed
// *buildgov.BudgetError in bounded time instead of hanging the caller.
func NewCtx(ctx context.Context, rs *rules.RuleSet, cfg Config, budget *buildgov.Budget) (*Tree, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, rs: rs, gov: buildgov.Start(ctx, budget)}
	all := make([]int, rs.Len())
	for i := range all {
		all[i] = i
	}
	var root *node
	var err error
	if cfg.BuildWorkers > 1 {
		root, err = t.buildParallel(all, cfg.BuildWorkers)
	} else {
		hb := &hbuilder{t: t}
		root, err = hb.build(rules.FullBox(), all, 0)
	}
	if err != nil {
		return nil, err
	}
	t.root = root
	t.collectStats()
	if err := t.serialize(); err != nil {
		return nil, err
	}
	t.stats.MemoryWords = t.image.TotalWords()
	return t, nil
}

// build recursively constructs the subtree for box holding ruleIdx (in
// priority order, all intersecting box).
func (b *hbuilder) build(box rules.Box, ruleIdx []int, depth int) (*node, error) {
	t := b.t
	if depth > HardMaxDepth {
		return nil, fmt.Errorf("%w: depth %d on rule set %q", ErrDepthExceeded, depth, t.rs.Name)
	}
	if err := t.gov.Check(); err != nil {
		return nil, err
	}
	if t.cfg.PruneCovered {
		// Rule overlap elimination: once a rule fully covers the node's
		// box, no lower-priority rule can ever win inside it, so the
		// list is truncated there.
		for k, ri := range ruleIdx {
			if t.rs.Rules[ri].Box().Covers(box) {
				ruleIdx = ruleIdx[:k+1]
				break
			}
		}
	}
	if len(ruleIdx) <= t.cfg.Binth || depth >= t.cfg.MaxDepth {
		return t.leaf(ruleIdx, depth)
	}
	dim, ok := b.chooseDim(box, ruleIdx)
	if !ok {
		// No dimension separates the rules (identical projections
		// everywhere): linear search is all that is left.
		return t.leaf(ruleIdx, depth)
	}
	log2nc := b.chooseCuts(box, ruleIdx, dim)
	nc := 1 << log2nc
	size := box[dim].Size()
	cw := size >> log2nc
	log2cw := uint(bits.TrailingZeros64(cw))

	// Distribute rules to cells.
	cells := make([][]int, nc)
	for _, ri := range ruleIdx {
		lo, hi := cellRange(t.rs.Rules[ri].Span(rules.Dim(dim)), box[dim], log2cw, nc)
		for c := lo; c <= hi; c++ {
			cells[c] = append(cells[c], ri)
		}
	}

	n := &node{depth: depth, dim: dim, log2cw: log2cw, log2nc: log2nc,
		children: make([]*node, nc)}
	// Charge the internal node: child pointer array plus the rule-index
	// slices held by the distribution above.
	if err := t.gov.Nodes(1, int64(nc)*8+int64(len(ruleIdx))*8+nodeOverheadBytes); err != nil {
		return nil, err
	}
	// Aggregate siblings with identical cell-relative rule geometry.
	shared := make(map[string]*node)
	var sig []byte
	for c := 0; c < nc; c++ {
		cellBox := box
		cellBox[dim] = rules.Span{
			Lo: box[dim].Lo + uint32(uint64(c)<<log2cw),
			Hi: box[dim].Lo + uint32(uint64(c+1)<<log2cw) - 1,
		}
		sig = sig[:0]
		for _, ri := range cells[c] {
			clip, _ := t.rs.Rules[ri].Span(rules.Dim(dim)).Intersect(cellBox[dim])
			sig = binary.AppendUvarint(sig, uint64(ri))
			sig = binary.AppendUvarint(sig, uint64(clip.Lo-cellBox[dim].Lo))
			sig = binary.AppendUvarint(sig, uint64(clip.Hi-cellBox[dim].Lo))
		}
		key := string(sig)
		if child, ok := shared[key]; ok {
			n.children[c] = child
			continue
		}
		child, err := b.build(cellBox, cells[c], depth+1)
		if err != nil {
			return nil, err
		}
		shared[key] = child
		n.children[c] = child
	}
	return n, nil
}

// leaf builds a leaf node, charging it against the governor.
func (t *Tree) leaf(ruleIdx []int, depth int) (*node, error) {
	if err := t.gov.Nodes(1, int64(len(ruleIdx))*8+nodeOverheadBytes); err != nil {
		return nil, err
	}
	return &node{leaf: true, ruleIdx: ruleIdx, depth: depth}, nil
}

// nodeOverheadBytes estimates the fixed per-node heap overhead charged to
// the governor alongside the variable-size arrays.
const nodeOverheadBytes = 96

// chooseDim picks the dimension with the most distinct clipped rule
// projections (ties broken toward the wider box span), the standard HiCuts
// heuristic. ok is false when no dimension has at least two distinct
// projections over a box wide enough to cut.
func (b *hbuilder) chooseDim(box rules.Box, ruleIdx []int) (rules.Dim, bool) {
	best := -1
	bestDistinct := 1
	var bestSize uint64
	if b.dimSeen == nil {
		b.dimSeen = make(map[rules.Span]bool, len(ruleIdx))
	}
	seen := b.dimSeen
	for d := 0; d < rules.NumDims; d++ {
		if box[d].Size() < 2 {
			continue
		}
		clear(seen)
		for _, ri := range ruleIdx {
			clip, ok := b.t.rs.Rules[ri].Span(rules.Dim(d)).Intersect(box[d])
			if !ok {
				continue
			}
			seen[clip] = true
		}
		distinct := len(seen)
		size := box[d].Size()
		if distinct > bestDistinct || (distinct == bestDistinct && best >= 0 && size > bestSize) {
			best, bestDistinct, bestSize = d, distinct, size
		}
	}
	if best < 0 {
		return 0, false
	}
	return rules.Dim(best), true
}

// chooseCuts grows the cut count while the space measure
// Σ(child counts) + cuts stays within SpFac × n, returning log2(cuts).
func (b *hbuilder) chooseCuts(box rules.Box, ruleIdx []int, dim rules.Dim) uint {
	size := box[dim].Size()
	budget := b.t.cfg.SpFac * float64(len(ruleIdx))
	log2nc := uint(1)
	for {
		next := log2nc + 1
		if uint64(1)<<next > uint64(b.t.cfg.MaxCuts) || uint64(1)<<next > size {
			break
		}
		if b.spaceMeasure(box, ruleIdx, dim, next) > budget {
			break
		}
		log2nc = next
	}
	return log2nc
}

// spaceMeasure computes Σ over cells of the rule count, plus the cut count,
// without materializing cell lists.
func (b *hbuilder) spaceMeasure(box rules.Box, ruleIdx []int, dim rules.Dim, log2nc uint) float64 {
	nc := 1 << log2nc
	log2cw := uint(bits.TrailingZeros64(box[dim].Size() >> log2nc))
	total := float64(nc)
	for _, ri := range ruleIdx {
		lo, hi := cellRange(b.t.rs.Rules[ri].Span(dim), box[dim], log2cw, nc)
		total += float64(hi - lo + 1)
	}
	return total
}

// cellRange returns the inclusive range of cell indices a rule span overlaps
// within a box cut into nc cells of width 1<<log2cw.
func cellRange(ruleSpan, boxSpan rules.Span, log2cw uint, nc int) (int, int) {
	clip, ok := ruleSpan.Intersect(boxSpan)
	if !ok {
		// Caller guarantees overlap; defensive fallback.
		return 0, -1
	}
	lo := int(uint64(clip.Lo-boxSpan.Lo) >> log2cw)
	hi := int(uint64(clip.Hi-boxSpan.Lo) >> log2cw)
	if hi >= nc {
		hi = nc - 1
	}
	return lo, hi
}

// Classify walks the in-memory tree: the native (untraced) lookup.
func (t *Tree) Classify(h rules.Header) int {
	n := t.root
	for !n.leaf {
		idx := (h.Field(n.dim) >> n.log2cw) & uint32(1<<n.log2nc-1)
		n = n.children[idx]
	}
	for _, ri := range n.ruleIdx {
		if t.rs.Rules[ri].Matches(h) {
			return ri
		}
	}
	return -1
}

// ClassifyBatch classifies hs[i] into out[i] (the engine's
// BatchClassifier contract; out must be at least as long as hs). HiCuts
// trees have data-dependent depth, so packets cannot be advanced
// level-synchronously the way fixed-stride ExpCuts batches are; the win
// here is amortized dispatch — one call, zero allocations, answers
// identical to Classify.
func (t *Tree) ClassifyBatch(hs []rules.Header, out []int) {
	out = out[:len(hs)]
	for i, h := range hs {
		out[i] = t.Classify(h)
	}
}

// Name identifies the algorithm in reports.
func (t *Tree) Name() string { return "HiCuts" }

// Stats returns build statistics.
func (t *Tree) Stats() BuildStats { return t.stats }

// MemoryBytes returns the serialized SRAM footprint.
func (t *Tree) MemoryBytes() int { return t.image.TotalBytes() }

// Image exposes the serialized SRAM image.
func (t *Tree) Image() *memlayout.Image { return t.image }

func (t *Tree) collectStats() {
	seen := make(map[*node]bool)
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if seen[n] {
			return
		}
		seen[n] = true
		if depth > t.stats.MaxDepth {
			t.stats.MaxDepth = depth
		}
		t.stats.Nodes++
		if n.leaf {
			t.stats.Leaves++
			if len(n.ruleIdx) > t.stats.MaxLeafRules {
				t.stats.MaxLeafRules = len(n.ruleIdx)
			}
			if acc := 2*depth + 3 + len(n.ruleIdx); acc > t.stats.WorstCaseAccesses {
				t.stats.WorstCaseAccesses = acc
			}
			return
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
}
