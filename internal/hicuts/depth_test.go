package hicuts

import (
	"context"
	"errors"
	"testing"

	"repro/internal/buildgov"
	"repro/internal/rules"
)

// The hard depth guard must fire independently of the cuts configuration:
// calling the recursion directly past HardMaxDepth — as a degenerate rule
// set that defeats every leaf condition would — returns ErrDepthExceeded
// instead of recursing on.
func TestHardDepthGuardFiresDirectly(t *testing.T) {
	rs := rules.NewRuleSet("depth", []rules.Rule{{
		SrcPort: rules.PortRange{Lo: 0, Hi: 65535},
		DstPort: rules.PortRange{Lo: 0, Hi: 65535},
		Proto:   rules.ProtoMatch{Wildcard: true},
	}})
	tr := &Tree{cfg: Config{Binth: 1}, rs: rs, gov: buildgov.Start(context.Background(), nil)}
	_, err := (&hbuilder{t: tr}).build(rules.FullBox(), []int{0}, HardMaxDepth+1)
	if !errors.Is(err, ErrDepthExceeded) {
		t.Fatalf("build at depth %d returned %v, want ErrDepthExceeded", HardMaxDepth+1, err)
	}
}

// A depth exactly at the bound is still legal; one past it is not — the
// guard is a ceiling on correct builds (every cut halves at least one of
// the 104 key bits), not a tunable.
func TestHardDepthBoundIsKeyBits(t *testing.T) {
	if HardMaxDepth != rules.KeyBits {
		t.Fatalf("HardMaxDepth = %d, want rules.KeyBits (%d)", HardMaxDepth, rules.KeyBits)
	}
	rs := rules.NewRuleSet("depth", []rules.Rule{{
		SrcPort: rules.PortRange{Lo: 0, Hi: 65535},
		DstPort: rules.PortRange{Lo: 0, Hi: 65535},
		Proto:   rules.ProtoMatch{Wildcard: true},
	}})
	tr := &Tree{cfg: Config{Binth: 1}, rs: rs, gov: buildgov.Start(context.Background(), nil)}
	if _, err := (&hbuilder{t: tr}).build(rules.FullBox(), []int{0}, HardMaxDepth); err != nil {
		t.Fatalf("build at the exact bound failed: %v (a single rule is a leaf at any depth)", err)
	}
}
