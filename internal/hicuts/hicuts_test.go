package hicuts

import (
	"math/rand"
	"testing"

	"repro/internal/pktgen"
	"repro/internal/rulegen"
	"repro/internal/rules"
)

func buildSet(t *testing.T, kind rulegen.Kind, size int, seed int64) *rules.RuleSet {
	t.Helper()
	rs, err := rulegen.Generate(rulegen.Config{Kind: kind, Size: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func trace(t *testing.T, rs *rules.RuleSet, n int, seed int64) []rules.Header {
	t.Helper()
	tr, err := pktgen.Generate(rs, pktgen.Config{Count: n, Seed: seed, MatchFraction: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Headers
}

func TestClassifyMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		kind rulegen.Kind
		size int
	}{
		{rulegen.Firewall, 85},
		{rulegen.Firewall, 310},
		{rulegen.CoreRouter, 460},
		{rulegen.Random, 120},
	} {
		rs := buildSet(t, tc.kind, tc.size, 21)
		tree, err := New(rs, Config{})
		if err != nil {
			t.Fatalf("%v/%d: %v", tc.kind, tc.size, err)
		}
		for _, h := range trace(t, rs, 2000, 22) {
			if got, want := tree.Classify(h), rs.Match(h); got != want {
				t.Fatalf("%v/%d: Classify(%v) = %d, oracle = %d", tc.kind, tc.size, h, got, want)
			}
		}
	}
}

func TestSerializedLookupMatchesNative(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 300, 23)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(trace(t, rs, 3000, 24)); err != nil {
		t.Fatal(err)
	}
}

func TestBinthBoundsLeafSize(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 200, 25)
	for _, binth := range []int{1, 2, 4, 8, 16} {
		tree, err := New(rs, Config{Binth: binth, PruneCovered: true})
		if err != nil {
			t.Fatal(err)
		}
		st := tree.Stats()
		// Leaves can exceed binth only when rules are inseparable; for
		// this structured set a small slack is acceptable but unbounded
		// growth is not.
		if st.MaxLeafRules > binth+8 {
			t.Errorf("binth=%d: max leaf rules %d", binth, st.MaxLeafRules)
		}
		if st.MaxDepth < 1 {
			t.Errorf("binth=%d: depth %d", binth, st.MaxDepth)
		}
	}
}

func TestSmallerBinthDeeperTree(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 400, 26)
	t1, err := New(rs, Config{Binth: 1, PruneCovered: true})
	if err != nil {
		t.Fatal(err)
	}
	t16, err := New(rs, Config{Binth: 16, PruneCovered: true})
	if err != nil {
		t.Fatal(err)
	}
	if t1.Stats().Nodes <= t16.Stats().Nodes {
		t.Errorf("binth=1 nodes %d should exceed binth=16 nodes %d",
			t1.Stats().Nodes, t16.Stats().Nodes)
	}
	// Tighter leaves trade memory for fewer leaf accesses.
	if t1.Stats().MemoryWords <= t16.Stats().MemoryWords {
		t.Errorf("binth=1 memory %d should exceed binth=16 memory %d",
			t1.Stats().MemoryWords, t16.Stats().MemoryWords)
	}
}

func TestProgramAccountsLinearSearch(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 150, 27)
	tree, err := New(rs, Config{Binth: 8})
	if err != nil {
		t.Fatal(err)
	}
	maxRecordReads := 0
	for _, h := range trace(t, rs, 500, 28) {
		p := tree.Program(h)
		if p.Result != tree.Classify(h) {
			t.Fatalf("program result mismatch for %v", h)
		}
		records := 0
		for _, s := range p.Steps {
			if s.Words == 6 {
				records++
			}
		}
		if records > maxRecordReads {
			maxRecordReads = records
		}
	}
	if maxRecordReads == 0 {
		t.Error("no leaf linear search observed; binth=8 tree should do record reads")
	}
	if maxRecordReads > tree.Stats().MaxLeafRules {
		t.Errorf("observed %d record reads > max leaf size %d", maxRecordReads, tree.Stats().MaxLeafRules)
	}
}

func TestChannelRestriction(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 100, 29)
	for channels := 1; channels <= 4; channels++ {
		tree, err := New(rs, Config{Channels: channels})
		if err != nil {
			t.Fatal(err)
		}
		words := tree.Image().ChannelWords()
		for c := channels; c < len(words); c++ {
			if words[c] != 0 {
				t.Errorf("channels=%d: channel %d has %d words", channels, c, words[c])
			}
		}
		if err := tree.Verify(trace(t, rs, 300, 30)); err != nil {
			t.Fatalf("channels=%d: %v", channels, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	rs := buildSet(t, rulegen.Firewall, 20, 31)
	bad := []Config{
		{Binth: -1},
		{SpFac: 0.5},
		{MaxCuts: 3},
		{Channels: 5},
	}
	for i, cfg := range bad {
		if _, err := New(rs, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestDuplicateRulesDoNotLoop(t *testing.T) {
	// Identical boxes with different actions cannot be separated by any
	// cut; the tree must terminate with a leaf holding all of them.
	r := rules.Rule{
		SrcIP:   rules.Prefix{Addr: 0x0A000000, Len: 8},
		SrcPort: rules.FullPortRange,
		DstPort: rules.FullPortRange,
		Proto:   rules.AnyProto,
	}
	dup := make([]rules.Rule, 20)
	for i := range dup {
		dup[i] = r
		dup[i].Action = rules.Action(i % 2)
	}
	rs := rules.NewRuleSet("dups", dup)
	tree, err := New(rs, Config{Binth: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := rules.Header{SrcIP: 0x0A010101}
	if got := tree.Classify(h); got != 0 {
		t.Errorf("Classify = %d, want 0 (highest priority duplicate)", got)
	}
}

func TestPruningPreservesClassification(t *testing.T) {
	// Rule overlap elimination changes the tree, never the answers.
	rs := buildSet(t, rulegen.Firewall, 150, 90)
	plain, err := New(rs, Config{Binth: 2})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := New(rs, Config{Binth: 2, PruneCovered: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Stats().MemoryWords >= plain.Stats().MemoryWords {
		t.Errorf("pruning should shrink memory: %d vs %d words",
			pruned.Stats().MemoryWords, plain.Stats().MemoryWords)
	}
	for _, h := range trace(t, rs, 1500, 91) {
		if pruned.Classify(h) != plain.Classify(h) {
			t.Fatalf("pruning changed classification for %v", h)
		}
	}
}

func TestWorstCaseAccessesBoundHolds(t *testing.T) {
	rs := buildSet(t, rulegen.CoreRouter, 250, 33)
	tree, err := New(rs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bound := tree.Stats().WorstCaseAccesses
	for _, h := range trace(t, rs, 1000, 34) {
		if p := tree.Program(h); p.Accesses() > bound {
			t.Fatalf("program used %d accesses, bound %d", p.Accesses(), bound)
		}
	}
}

func TestRandomRuleSetsProperty(t *testing.T) {
	// Unstructured random rule sets across many seeds: serialized and
	// native lookups must both agree with the oracle.
	for seed := int64(0); seed < 8; seed++ {
		rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Random, Size: 60, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tree, err := New(rs, Config{Binth: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < 300; i++ {
			h := pktgen.RandomHeader(rng)
			want := rs.Match(h)
			if got := tree.Classify(h); got != want {
				t.Fatalf("seed %d: native %d, oracle %d for %v", seed, got, want, h)
			}
		}
		if err := tree.Verify(trace(t, rs, 300, seed+200)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
