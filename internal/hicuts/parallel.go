package hicuts

import (
	"encoding/binary"
	"math/bits"
	"sync"

	"repro/internal/rules"
)

// buildParallel constructs the tree with cfg.BuildWorkers builder
// goroutines. The root's cut decision (dimension, cut count) is made
// sequentially with the exact heuristics of a sequential build; its cells
// are then statically partitioned into contiguous chunks, one worker per
// chunk, each with its own hbuilder scratch and sibling-aggregation
// scope. Workers share only the Tree's governor, which is
// concurrency-safe, so budget accounting stays exact and a trip by any
// worker unwinds the whole pool.
//
// The static partition makes the result deterministic for a fixed worker
// count. Classification is identical to a sequential build; sibling
// aggregation is scoped per chunk, so a parallel tree may share fewer
// child nodes (never produce different answers).
func (t *Tree) buildParallel(all []int, workers int) (*node, error) {
	// Root leaf cases, mirroring the top of hbuilder.build at depth 0.
	box := rules.FullBox()
	if t.cfg.PruneCovered {
		for k, ri := range all {
			if t.rs.Rules[ri].Box().Covers(box) {
				all = all[:k+1]
				break
			}
		}
	}
	hb := &hbuilder{t: t}
	if len(all) <= t.cfg.Binth || t.cfg.MaxDepth <= 0 {
		return t.leaf(all, 0)
	}
	dim, ok := hb.chooseDim(box, all)
	if !ok {
		return t.leaf(all, 0)
	}
	log2nc := hb.chooseCuts(box, all, dim)
	nc := 1 << log2nc
	log2cw := uint(bits.TrailingZeros64(box[dim].Size() >> log2nc))

	cells := make([][]int, nc)
	for _, ri := range all {
		lo, hi := cellRange(t.rs.Rules[ri].Span(dim), box[dim], log2cw, nc)
		for c := lo; c <= hi; c++ {
			cells[c] = append(cells[c], ri)
		}
	}

	n := &node{depth: 0, dim: dim, log2cw: log2cw, log2nc: log2nc,
		children: make([]*node, nc)}
	if err := t.gov.Nodes(1, int64(nc)*8+int64(len(all))*8+nodeOverheadBytes); err != nil {
		return nil, err
	}

	if workers > nc {
		workers = nc
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo, hi := k*nc/workers, (k+1)*nc/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			wb := &hbuilder{t: t}
			// Sibling aggregation within this worker's chunk only: the
			// sequential build shares across all nc siblings; per-chunk
			// scoping can only duplicate nodes, never change answers.
			shared := make(map[string]*node)
			var sig []byte
			for c := lo; c < hi; c++ {
				cellBox := box
				cellBox[dim] = rules.Span{
					Lo: box[dim].Lo + uint32(uint64(c)<<log2cw),
					Hi: box[dim].Lo + uint32(uint64(c+1)<<log2cw) - 1,
				}
				sig = sig[:0]
				for _, ri := range cells[c] {
					clip, _ := t.rs.Rules[ri].Span(dim).Intersect(cellBox[dim])
					sig = binary.AppendUvarint(sig, uint64(ri))
					sig = binary.AppendUvarint(sig, uint64(clip.Lo-cellBox[dim].Lo))
					sig = binary.AppendUvarint(sig, uint64(clip.Hi-cellBox[dim].Lo))
				}
				key := string(sig)
				if child, ok := shared[key]; ok {
					n.children[c] = child
					continue
				}
				child, err := wb.build(cellBox, cells[c], 1)
				if err != nil {
					errs[k] = err
					return
				}
				shared[key] = child
				n.children[c] = child
			}
		}()
	}
	wg.Wait()

	// Prefer the governor's sticky error so a tripped budget is reported
	// identically no matter which worker(s) observed it first.
	if err := t.gov.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}
