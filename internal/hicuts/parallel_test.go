package hicuts

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/buildgov"
	"repro/internal/pktgen"
	"repro/internal/rulegen"
)

// TestParallelBuildMatchesSequential builds the same rule sets with
// several worker counts and checks every variant classifies identically
// to the sequential tree and the oracle.
func TestParallelBuildMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		kind rulegen.Kind
		size int
		cfg  Config
	}{
		{rulegen.CoreRouter, 400, Config{}},
		{rulegen.Firewall, 250, Config{}},
		{rulegen.Firewall, 150, Config{Binth: 2, PruneCovered: true}},
		{rulegen.Random, 80, Config{}},
	} {
		rs, err := rulegen.Generate(rulegen.Config{Kind: tc.kind, Size: tc.size, Seed: 351})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := pktgen.Generate(rs, pktgen.Config{Count: 1500, Seed: 352, MatchFraction: 0.85})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := New(rs, tc.cfg)
		if err != nil {
			t.Fatalf("%v/%d sequential: %v", tc.kind, tc.size, err)
		}
		for _, workers := range []int{2, 8} {
			cfg := tc.cfg
			cfg.BuildWorkers = workers
			par, err := New(rs, cfg)
			if err != nil {
				t.Fatalf("%v/%d workers=%d: %v", tc.kind, tc.size, workers, err)
			}
			for _, h := range tr.Headers {
				want := rs.Match(h)
				if got := par.Classify(h); got != want {
					t.Fatalf("%v/%d workers=%d: Classify(%v) = %d, oracle = %d",
						tc.kind, tc.size, workers, h, got, want)
				}
				if got := seq.Classify(h); got != want {
					t.Fatalf("%v/%d: sequential tree disagrees with oracle", tc.kind, tc.size)
				}
			}
			// Determinism: rebuilding with the same worker count yields the
			// same shape.
			again, err := New(rs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if again.Stats() != par.Stats() {
				t.Fatalf("%v/%d workers=%d: parallel build not deterministic: %+v vs %+v",
					tc.kind, tc.size, workers, par.Stats(), again.Stats())
			}
		}
	}
}

// TestParallelBuildTripUnwindsWithinDeadline runs a parallel build of a
// pathological overlap-heavy set under a tight wall-clock budget; the
// fanned-out workers must all unwind within 2x the deadline.
func TestParallelBuildTripUnwindsWithinDeadline(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.Random, Size: 4000, Seed: 361})
	if err != nil {
		t.Fatal(err)
	}
	timeout := 100 * time.Millisecond
	for _, workers := range []int{2, 8} {
		start := time.Now()
		_, err := NewCtx(context.Background(), rs,
			Config{Binth: 1, PruneCovered: true, BuildWorkers: workers},
			&buildgov.Budget{Timeout: timeout})
		elapsed := time.Since(start)
		if err == nil {
			t.Logf("workers=%d: build finished inside budget in %v", workers, elapsed)
		} else if !errors.Is(err, buildgov.ErrBudgetExceeded) && !errors.Is(err, ErrDepthExceeded) {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if elapsed > 2*timeout {
			t.Fatalf("workers=%d: unwind took %v, want <= 2x the %v deadline", workers, elapsed, timeout)
		}
	}
}

// TestParallelBuildNodeChargeExact checks governor node accounting on a
// parallel build equals the number of unique nodes actually constructed:
// concurrent charges must not be lost or double-counted. Shared
// (aggregated) children are built once and charged once.
func TestParallelBuildNodeChargeExact(t *testing.T) {
	rs, err := rulegen.Generate(rulegen.Config{Kind: rulegen.CoreRouter, Size: 500, Seed: 371})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		cfg := Config{BuildWorkers: workers}
		if err := cfg.fillDefaults(); err != nil {
			t.Fatal(err)
		}
		tree := &Tree{cfg: cfg, rs: rs, gov: buildgov.Start(context.Background(), &buildgov.Budget{})}
		all := make([]int, rs.Len())
		for i := range all {
			all[i] = i
		}
		root, err := tree.buildParallel(all, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tree.root = root
		tree.collectStats()
		if got, want := tree.gov.Stats().Nodes, tree.Stats().Nodes; got != want {
			t.Fatalf("workers=%d: governor charged %d nodes, tree has %d unique nodes",
				workers, got, want)
		}
	}
}
