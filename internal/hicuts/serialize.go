package hicuts

import (
	"fmt"

	"repro/internal/memlayout"
	"repro/internal/nptrace"
	"repro/internal/rules"
	"repro/internal/ruletable"
)

// Serialized layout.
//
// Internal node (1 + cells words):
//
//	word 0:       dim(3) ‖ log2nc(5) ‖ log2cw(6) ‖ zero(18)   [bit31 clear]
//	words 1..nc:  child pointer words (memlayout pointer encoding;
//	              leaf pointers here address leaf *nodes*, not rules)
//
// Leaf node (1 + max(count, binth) words):
//
//	word 0:       bit31 set ‖ count(16)
//	words 1..:    rule indices in priority order, zero-padded to at least
//	              binth entries so the lookup can fetch the whole block
//	              with one fixed-size burst, the way microcode does.
//
// Rule records live in a single shared rule table (6 words per rule,
// ruletable encoding) on one SRAM channel, as in the era's reference
// implementations. A leaf visit costs one fixed burst for the leaf block
// plus one 6-word read per stored rule on the rule-table channel — the
// paper's "binth times of memory accesses and each memory access refers to
// 6 consecutive 32-bit words" (§6.6). The microcode issues the whole batch
// unconditionally (no data-dependent early exit): deterministic per-packet
// budgets are what let threads be scheduled at line rate (§3.2).
const (
	leafNodeFlag = uint32(1) << 31
)

func packInternal(dim rules.Dim, log2nc, log2cw uint) uint32 {
	return uint32(dim)<<28 | uint32(log2nc)<<23 | uint32(log2cw)<<17
}

func unpackInternal(w uint32) (dim rules.Dim, log2nc, log2cw uint) {
	return rules.Dim(w >> 28 & 0x7), uint(w >> 23 & 0x1F), uint(w >> 17 & 0x3F)
}

// serialize lays the tree out across SRAM channels: tree levels are
// assigned to channels in proportion to bandwidth headroom (§5.3); the
// shared rule table goes on the last configured channel.
func (t *Tree) serialize() error {
	levels := t.stats.MaxDepth + 1
	alloc, err := memlayout.AllocateLevels(memlayout.UniformDemand(levels), t.cfg.Headroom, t.cfg.Channels)
	if err != nil {
		return err
	}
	t.image = memlayout.NewImage()
	t.ruleCh = uint8(t.cfg.Channels - 1)
	t.ruleBase = t.image.Alloc(t.ruleCh, ruletable.Encode(t.rs))

	var place func(n *node, depth int) uint32
	place = func(n *node, depth int) uint32 {
		if n.placed {
			return memlayout.NodePtr(n.channel, n.addr)
		}
		ch := alloc[depth]
		if n.leaf {
			slots := len(n.ruleIdx)
			if slots < t.cfg.Binth {
				slots = t.cfg.Binth
			}
			words := make([]uint32, 1+slots)
			words[0] = leafNodeFlag | uint32(len(n.ruleIdx))
			for i, ri := range n.ruleIdx {
				words[1+i] = uint32(ri)
			}
			n.addr = t.image.Alloc(ch, words)
			n.channel = ch
			n.placed = true
			return memlayout.NodePtr(ch, n.addr)
		}
		nc := len(n.children)
		n.addr = t.image.Reserve(ch, 1+nc)
		n.channel = ch
		n.placed = true
		t.image.Set(ch, n.addr, packInternal(n.dim, n.log2nc, n.log2cw))
		for i, c := range n.children {
			t.image.Set(ch, n.addr+1+uint32(i), place(c, depth+1))
		}
		return memlayout.NodePtr(ch, n.addr)
	}
	t.rootPtr = place(t.root, 0)
	return nil
}

// Lookup runs the serialized lookup against mem, producing the access
// pattern the NP simulator replays.
func (t *Tree) Lookup(mem nptrace.Mem, h rules.Header) int {
	costs := nptrace.DefaultCosts
	ptr := t.rootPtr
	for {
		ch, off := memlayout.NodeAddr(ptr)
		if memlayout.IsLeaf(ptr) {
			panic("hicuts: leaf pointers are not used in the serialized tree")
		}
		mem.Compute(costs.IssueIO)
		w0 := mem.Read(ch, off, 1)[0]
		if w0&leafNodeFlag != 0 {
			return t.scanLeaf(mem, ch, off, int(w0&0xFFFF), h)
		}
		dim, log2nc, log2cw := unpackInternal(w0)
		mem.Compute(4 * costs.ALU) // extract field, shift, mask, add
		idx := (h.Field(dim) >> log2cw) & uint32(1<<log2nc-1)
		mem.Compute(costs.IssueIO)
		ptr = mem.Read(ch, off+1+idx, 1)[0]
	}
}

// scanLeaf performs the batched leaf linear search: fetch the fixed-size
// leaf block (already read word 0), then unconditionally fetch every stored
// rule record from the shared rule table, returning the highest-priority
// match.
func (t *Tree) scanLeaf(mem nptrace.Mem, ch uint8, off uint32, count int, h rules.Header) int {
	if count == 0 {
		return -1
	}
	// The leaf block burst covers binth slots; oversized (forced) leaves
	// need a follow-up read for the tail.
	first := count
	if first > t.cfg.Binth {
		first = t.cfg.Binth
	}
	costs := nptrace.DefaultCosts
	mem.Compute(costs.IssueIO)
	ids := append([]uint32(nil), mem.Read(ch, off+1, first)...)
	if count > first {
		mem.Compute(costs.IssueIO)
		ids = append(ids, mem.Read(ch, off+1+uint32(first), count-first)...)
	}
	match := -1
	for _, id := range ids {
		mem.Compute(costs.IssueIO)
		rec := mem.Read(t.ruleCh, t.ruleBase+id*ruletable.WordsPerRule, ruletable.WordsPerRule)
		mem.Compute(ruletable.CompareCycles)
		if match < 0 && ruletable.MatchRecord(rec, h) {
			match = int(rec[5])
		}
	}
	return match
}

// Program records the access program for one header.
func (t *Tree) Program(h rules.Header) nptrace.Program {
	rec := nptrace.NewRecorder(t.image)
	return rec.Finish(t.Lookup(rec, h))
}

// Verify cross-checks the serialized lookup against the native tree walk
// for the given headers; any divergence is a serialization bug.
func (t *Tree) Verify(headers []rules.Header) error {
	mem := nptrace.NullMem{R: t.image}
	for _, h := range headers {
		if got, want := t.Lookup(mem, h), t.Classify(h); got != want {
			return fmt.Errorf("hicuts: serialized lookup %d != native %d for %v", got, want, h)
		}
	}
	return nil
}
