package repro

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd exercises the documented quick-start flow: load a
// standard rule set, build every classifier, agree with linear search, and
// simulate throughput.
func TestPublicAPIEndToEnd(t *testing.T) {
	rs, err := StandardRuleSet("CR01")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(rs, 500, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewLinear(rs)

	ec, err := NewExpCuts(rs, ExpCutsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHiCuts(rs, HiCutsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewHSM(rs, HSMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := NewRFC(rs, RFCConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range []Classifier{ec, hc, hs, rf} {
		for _, h := range tr.Headers {
			if got, want := cl.Classify(h), oracle.Classify(h); got != want {
				t.Fatalf("%s: Classify(%v) = %d, oracle %d", cl.Name(), h, got, want)
			}
		}
		if cl.MemoryBytes() <= 0 {
			t.Errorf("%s: MemoryBytes = %d", cl.Name(), cl.MemoryBytes())
		}
	}

	res, err := SimulateThroughput(ec, tr.Headers[:100], DefaultNPConfig(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMbps <= 0 {
		t.Errorf("throughput = %v", res.ThroughputMbps)
	}
}

func TestPublicAPIRuleSetIO(t *testing.T) {
	rs, err := GenerateRuleSet(FirewallRules, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseRuleSet("roundtrip", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rs.Len() {
		t.Fatalf("round trip lost rules: %d -> %d", rs.Len(), back.Len())
	}
}

func TestPublicAPIStandardNames(t *testing.T) {
	names := StandardRuleSetNames()
	if len(names) != 7 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		rs, err := StandardRuleSet(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if rs.Name != n {
			t.Errorf("set name %q != %q", rs.Name, n)
		}
	}
}

func TestPublicAPIApplication(t *testing.T) {
	rs, err := StandardRuleSet("FW01")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(rs, 200, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := NewExpCuts(rs, ExpCutsConfig{Headroom: PaperHeadroom})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateApplication(ec, tr.Headers, DefaultAppConfig(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMbps <= 0 {
		t.Errorf("throughput = %v", res.ThroughputMbps)
	}
}

func TestPublicAPIHyperCuts(t *testing.T) {
	rs, err := StandardRuleSet("FW01")
	if err != nil {
		t.Fatal(err)
	}
	hyper, err := NewHyperCuts(rs, HyperCutsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewLinear(rs)
	tr, err := GenerateTrace(rs, 400, 3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range tr.Headers {
		if got, want := hyper.Classify(h), oracle.Classify(h); got != want {
			t.Fatalf("HyperCuts Classify(%v) = %d, oracle %d", h, got, want)
		}
	}
}

func TestPublicAPIEngine(t *testing.T) {
	rs, err := StandardRuleSet("FW01")
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewExpCuts(rs, ExpCutsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(rs, 3000, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	var next uint64
	st, err := RunEngine(tree, EngineConfig{Workers: 4, PreserveOrder: true}, tr.Headers, func(r EngineResult) {
		if r.Seq != next {
			t.Fatalf("out of order: got %d, want %d", r.Seq, next)
		}
		next++
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Packets != tr.Len() {
		t.Errorf("packets = %d", st.Packets)
	}
}

func TestPublicAPIWire(t *testing.T) {
	in := Header{SrcIP: 0x0A000001, DstIP: 0x0B000002, SrcPort: 1024, DstPort: 80, Proto: ProtoTCP}
	out, err := ParseFrame(BuildFrame(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("wire round trip: %v != %v", out, in)
	}
}
